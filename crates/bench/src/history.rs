//! Append-only benchmark history for `BENCH_sampling.json`.
//!
//! The file used to hold a single report object that every `raf
//! bench-json` run overwrote — the perf trajectory across PRs was lost
//! (a ROADMAP open item). It is now a schema-versioned history:
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "benchmark": "sampling_pipeline",
//!   "entries": [ { "scenario": "powerlaw_cluster_10k_t1", ... }, ... ]
//! }
//! ```
//!
//! Each run **appends** one entry per scenario; the last entry for a
//! `(scenario, profile)` pair is the current baseline the CI
//! `bench-regression` job gates against. A legacy single-object v1 file
//! is migrated in place: it becomes the first history entry, tagged with
//! the scenario the old hard-coded workload corresponds to.
//!
//! The workspace's vendored `serde` is a no-op shim, so this module
//! carries a small hand-rolled JSON reader/writer ([`JsonValue`]) that
//! covers the subset the bench reports emit.

use std::fmt::Write as _;

/// The scenario name of the workload the v1 single-object file measured.
pub const V1_SCENARIO: &str = "powerlaw_cluster_10k_t1";

/// Current history schema version.
pub const SCHEMA_VERSION: u64 = 2;

/// A parsed JSON value (reader/writer subset: full RFC 8259 string
/// escaping — `\" \\ \/ \n \t \r \b \f` and `\uXXXX` incl. surrogate
/// pairs — with numbers as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Dotted-path number lookup, e.g. `value.path_f64(&["arena_ns", "total"])`.
    pub fn path_f64(&self, path: &[&str]) -> Option<f64> {
        let mut v = self;
        for key in path {
            v = v.get(key)?;
        }
        v.as_f64()
    }

    /// Renders the value as JSON text (numbers that are mathematically
    /// integers print without a decimal point, so ns counts survive a
    /// parse → render round trip unchanged).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                out.push_str(if *b { "true" } else { "false" });
            }
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    for _ in 0..indent + 2 {
                        out.push(' ');
                    }
                    item.render_into(out, indent + 2);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{ ");
                let nested = fields.iter().any(|(_, v)| {
                    matches!(v, JsonValue::Obj(f) if !f.is_empty())
                        || matches!(v, JsonValue::Arr(a) if !a.is_empty())
                });
                if nested {
                    out.pop();
                    out.push('\n');
                }
                for (i, (key, value)) in fields.iter().enumerate() {
                    if nested {
                        for _ in 0..indent + 2 {
                            out.push(' ');
                        }
                    }
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 2);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    if nested {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                }
                if nested {
                    for _ in 0..indent {
                        out.push(' ');
                    }
                }
                out.push('}');
            }
        }
    }
}

/// Parses JSON text.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
            raw.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number {raw:?} at byte {start}"))
        }
    }
}

/// Renders a string (value *or* object key) with full RFC 8259 escaping:
/// quotes, backslashes, and every control character — the common ones as
/// their two-character escapes, the rest as `\u00XX`. Free-text columns
/// (dataset names, error strings) pass through writers verbatim, so the
/// writer must never assume its input is identifier-shaped.
fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let unit = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a \uXXXX low surrogate must
                            // follow; combine into one code point.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(cp).ok_or("invalid surrogate pair")?
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err("lone low surrogate".into());
                        } else {
                            char::from_u32(unit).ok_or("invalid \\u escape")?
                        };
                        out.push(c);
                    }
                    other => return Err(format!("unsupported escape \\{}", *other as char)),
                }
            }
            _ => {
                // Re-synchronize on UTF-8: push the whole code point.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                let s = std::str::from_utf8(&bytes[start..end])
                    .map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

/// Reads exactly four hex digits (the payload of a `\u` escape).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let chunk = bytes.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
    let s = std::str::from_utf8(chunk).map_err(|_| "invalid \\u escape")?;
    let v = u32::from_str_radix(s, 16).map_err(|_| format!("invalid \\u escape \\u{s}"))?;
    *pos += 4;
    Ok(v)
}

/// The benchmark history: an ordered list of per-scenario entries.
#[derive(Debug, Clone, Default)]
pub struct BenchHistory {
    /// History entries, oldest first.
    pub entries: Vec<JsonValue>,
}

impl BenchHistory {
    /// Parses a history file, migrating a legacy v1 single-object report
    /// (no `schema_version`) into the first entry. An empty or
    /// whitespace-only text yields an empty history.
    ///
    /// # Errors
    ///
    /// Returns a description of the syntax or schema problem.
    pub fn from_text(text: &str) -> Result<Self, String> {
        if text.trim().is_empty() {
            return Ok(BenchHistory::default());
        }
        let value = parse_json(text)?;
        if value.get("schema_version").is_some() {
            let entries = match value.get("entries") {
                Some(JsonValue::Arr(items)) => items.clone(),
                _ => return Err("schema v2 file lacks an \"entries\" array".into()),
            };
            return Ok(BenchHistory { entries });
        }
        // v1: one bare report object for the old hard-coded workload.
        if value.get("benchmark").is_none() {
            return Err("neither a v2 history nor a v1 report".into());
        }
        let mut entry = vec![
            ("scenario".to_string(), JsonValue::Str(V1_SCENARIO.into())),
            ("profile".to_string(), JsonValue::Str("full".into())),
        ];
        if let JsonValue::Obj(fields) = value {
            entry.extend(fields.into_iter().filter(|(k, _)| k != "benchmark"));
        }
        Ok(BenchHistory { entries: vec![JsonValue::Obj(entry)] })
    }

    /// Appends one entry.
    pub fn push(&mut self, entry: JsonValue) {
        self.entries.push(entry);
    }

    /// The most recent entry for a `(scenario, profile)` pair.
    pub fn last_for(&self, scenario: &str, profile: &str) -> Option<&JsonValue> {
        self.entries.iter().rev().find(|e| {
            e.get("scenario").and_then(JsonValue::as_str) == Some(scenario)
                && e.get("profile").and_then(JsonValue::as_str) == Some(profile)
        })
    }

    /// Renders the whole history file (schema v2).
    pub fn to_text(&self) -> String {
        let doc = JsonValue::Obj(vec![
            ("schema_version".to_string(), JsonValue::Num(SCHEMA_VERSION as f64)),
            ("benchmark".to_string(), JsonValue::Str("sampling_pipeline".into())),
            ("entries".to_string(), JsonValue::Arr(self.entries.clone())),
        ]);
        let mut text = doc.render();
        text.push('\n');
        text
    }

    /// The arena sampling+solve total (ns) of the most recent entry for
    /// the pair, i.e. the regression baseline.
    pub fn baseline_total_ns(&self, scenario: &str, profile: &str) -> Option<f64> {
        self.last_for(scenario, profile)?.path_f64(&["arena_ns", "total"])
    }

    /// The legacy sampling time (ns) of the same baseline entry. The
    /// legacy sampler is a frozen replica of the pre-arena code, so its
    /// wall clock calibrates machine speed and lets the regression gate
    /// compare runs recorded on different machines.
    pub fn baseline_legacy_sample_ns(&self, scenario: &str, profile: &str) -> Option<f64> {
        self.last_for(scenario, profile)?.path_f64(&["legacy_ns", "sample"])
    }

    /// The walk-kernel bake-off sampling time (ns) of the same baseline
    /// entry for `kernel` (`"scalar"` or `"lockstep"`) — `None` for
    /// entries predating the bake-off or for non-dataset scenarios.
    pub fn baseline_kernel_ns(&self, scenario: &str, profile: &str, kernel: &str) -> Option<f64> {
        self.last_for(scenario, profile)?.path_f64(&["kernel_ns", kernel])
    }
}

/// How the regression gate should account for machine speed when
/// comparing a fresh measurement against a committed baseline, derived
/// from the calibration timing (the frozen legacy sampler, or the scalar
/// kernel) recorded in both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineFactor {
    /// Both calibration timings are sane: multiply the baseline by this
    /// `current / baseline` factor before gating.
    Normalize(f64),
    /// The baseline entry predates calibration timings: compare raw ns
    /// (the historical fallback; noisy across machines but not wrong).
    Raw,
    /// At least one calibration timing is zero, denormal, or non-finite.
    /// The gate must be *skipped with this warning* — dividing by (or
    /// multiplying with) such a value used to collapse the factor to 1.0
    /// and pass the gate vacuously.
    Skip(&'static str),
}

/// Derives the [`MachineFactor`] from a baseline calibration timing (as
/// recorded in the history entry, `None` when the entry predates the
/// field) and the same calibration measured in the current run.
pub fn machine_factor(baseline_ns: Option<f64>, current_ns: f64) -> MachineFactor {
    // A denormal (or zero, or non-finite) timing cannot calibrate
    // anything: a division by it is ±inf or garbage in the last ulps.
    // `MIN_POSITIVE` is the smallest *normal* f64, so this catches the
    // whole subnormal range too.
    fn unusable(x: f64) -> bool {
        !x.is_finite() || x < f64::MIN_POSITIVE
    }
    match baseline_ns {
        None => MachineFactor::Raw,
        Some(b) if unusable(b) => {
            MachineFactor::Skip("baseline calibration timing is zero/denormal")
        }
        Some(_) if unusable(current_ns) => {
            MachineFactor::Skip("current calibration timing is zero/denormal")
        }
        Some(b) => MachineFactor::Normalize(current_ns / b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V1: &str = r#"{
  "benchmark": "sampling_pipeline",
  "graph": { "kind": "powerlaw_cluster", "nodes": 10000, "edges": 19997, "s": 7, "t": 3633 },
  "config": { "walks": 200000, "seed": 7, "threads": 1, "reps": 3, "beta": 0.3 },
  "pool": { "type1": 51517, "unique_paths": 793, "dedup_factor": 64.965, "pmax_estimate": 0.257585, "cover_p": 15456 },
  "legacy_ns": { "sample": 33467145, "solve": 14859407, "total": 48326552 },
  "arena_ns": { "sample": 19919465, "solve": 1494507, "total": 21413972 },
  "cost": { "legacy": 1, "arena": 1 },
  "speedup": 2.257
}"#;

    #[test]
    fn free_text_strings_round_trip_through_render_and_parse() {
        // Free-text content a writer must survive verbatim: quotes,
        // backslashes, every named control escape, unnamed control
        // characters, and non-ASCII text (incl. astral-plane code
        // points, which arrive as \u surrogate pairs from other
        // writers).
        let nasty = "say \"hi\"\\path\n\t\r\u{8}\u{c}\u{1}\u{1f} café 🦀";
        let doc = JsonValue::Obj(vec![
            ("plain".into(), JsonValue::Str(nasty.into())),
            // Keys are strings too: a free-text key must escape.
            (nasty.into(), JsonValue::Num(1.0)),
        ]);
        let rendered = doc.render();
        // The rendered document is valid JSON: no raw control bytes.
        assert!(rendered.bytes().all(|b| b >= 0x20 || b == b'\n'));
        assert!(rendered.contains("\\u0001") && rendered.contains("\\u001f"));
        let back = parse_json(&rendered).unwrap();
        assert_eq!(back, doc);
        // Surrogate-pair escapes from external writers parse to the
        // astral code point, and lone surrogates are rejected.
        let v = parse_json(r#""\ud83e\udd80 ok \u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀 ok é"));
        assert!(parse_json(r#""\ud83e""#).is_err());
        assert!(parse_json(r#""\udd80""#).is_err());
        assert!(parse_json(r#""\u12"#).is_err());
    }

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse_json(r#"{"a": [1, 2.5, -3e2], "b": "x\"y", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.path_f64(&["a"]), None);
        match v.get("a") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(2.5));
                assert_eq!(items[2].as_f64(), Some(-300.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("nulL").is_err());
    }

    #[test]
    fn integers_survive_round_trip() {
        let v = parse_json(V1).unwrap();
        let text = v.render();
        assert!(text.contains("21413972"), "ns total mangled: {text}");
        assert!(text.contains("2.257"), "float mangled");
        let again = parse_json(&text).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn migrates_v1_to_history() {
        let h = BenchHistory::from_text(V1).unwrap();
        assert_eq!(h.entries.len(), 1);
        let e = &h.entries[0];
        assert_eq!(e.get("scenario").and_then(JsonValue::as_str), Some(V1_SCENARIO));
        assert_eq!(e.get("profile").and_then(JsonValue::as_str), Some("full"));
        assert_eq!(h.baseline_total_ns(V1_SCENARIO, "full"), Some(21_413_972.0));
        assert_eq!(h.baseline_legacy_sample_ns(V1_SCENARIO, "full"), Some(33_467_145.0));
        assert_eq!(h.baseline_total_ns(V1_SCENARIO, "quick"), None);
        // Pre-bake-off entries have no kernel timings.
        assert_eq!(h.baseline_kernel_ns(V1_SCENARIO, "full", "lockstep"), None);
    }

    #[test]
    fn kernel_baselines_read_the_bakeoff_fields() {
        let mut h = BenchHistory::default();
        h.push(JsonValue::Obj(vec![
            ("scenario".into(), JsonValue::Str("dataset_wiki_7k_t1".into())),
            ("profile".into(), JsonValue::Str("full".into())),
            (
                "kernel_ns".into(),
                JsonValue::Obj(vec![
                    ("scalar".into(), JsonValue::Num(9_000_000.0)),
                    ("lockstep".into(), JsonValue::Num(6_000_000.0)),
                    ("lanes".into(), JsonValue::Num(16.0)),
                ]),
            ),
        ]));
        assert_eq!(h.baseline_kernel_ns("dataset_wiki_7k_t1", "full", "scalar"), Some(9_000_000.0));
        assert_eq!(
            h.baseline_kernel_ns("dataset_wiki_7k_t1", "full", "lockstep"),
            Some(6_000_000.0)
        );
        assert_eq!(h.baseline_kernel_ns("dataset_wiki_7k_t1", "quick", "scalar"), None);
        assert_eq!(h.baseline_kernel_ns("dataset_hepth_28k_t1", "full", "scalar"), None);
    }

    #[test]
    fn history_appends_and_reloads() {
        let mut h = BenchHistory::from_text(V1).unwrap();
        h.push(JsonValue::Obj(vec![
            ("scenario".into(), JsonValue::Str(V1_SCENARIO.into())),
            ("profile".into(), JsonValue::Str("full".into())),
            (
                "arena_ns".into(),
                JsonValue::Obj(vec![("total".into(), JsonValue::Num(15_000_000.0))]),
            ),
        ]));
        let text = h.to_text();
        let h2 = BenchHistory::from_text(&text).unwrap();
        assert_eq!(h2.entries.len(), 2);
        // Latest entry wins as the baseline.
        assert_eq!(h2.baseline_total_ns(V1_SCENARIO, "full"), Some(15_000_000.0));
        // Round trip again: stable.
        assert_eq!(BenchHistory::from_text(&h2.to_text()).unwrap().entries.len(), 2);
    }

    #[test]
    fn empty_text_is_empty_history() {
        let h = BenchHistory::from_text("  \n").unwrap();
        assert!(h.entries.is_empty());
        let text = h.to_text();
        assert!(BenchHistory::from_text(&text).unwrap().entries.is_empty());
    }

    #[test]
    fn unknown_schema_is_an_error() {
        assert!(BenchHistory::from_text("{\"foo\": 1}").is_err());
        assert!(BenchHistory::from_text("{\"schema_version\": 2}").is_err());
    }

    #[test]
    fn machine_factor_normalizes_sane_timings() {
        assert_eq!(machine_factor(Some(2.0e6), 1.0e6), MachineFactor::Normalize(0.5));
        assert_eq!(machine_factor(Some(1.0e6), 3.0e6), MachineFactor::Normalize(3.0));
        // A baseline entry predating calibration timings falls back to
        // the raw-ns comparison, as the gate always did.
        assert_eq!(machine_factor(None, 1.0e6), MachineFactor::Raw);
    }

    #[test]
    fn machine_factor_skips_on_zero_or_denormal_timings() {
        // Every unusable shape must *skip*, never normalize to 1.0: the
        // old `.filter(...).map_or(1.0, ...)` collapsed all of these into
        // a vacuous gate pass.
        for bad in [0.0, -1.0, f64::MIN_POSITIVE / 2.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(machine_factor(Some(bad), 1.0e6), MachineFactor::Skip(_)),
                "baseline {bad} must skip"
            );
            assert!(
                matches!(machine_factor(Some(1.0e6), bad), MachineFactor::Skip(_)),
                "current {bad} must skip"
            );
        }
        // The boundary itself is usable: MIN_POSITIVE is a normal f64.
        assert!(matches!(
            machine_factor(Some(f64::MIN_POSITIVE), f64::MIN_POSITIVE),
            MachineFactor::Normalize(_)
        ));
    }

    #[test]
    fn machine_factor_skips_on_a_zeroed_history_entry() {
        // A synthetic baseline entry whose legacy sampling time is zero —
        // the exact shape that used to slip through the quick gate.
        let entry = parse_json(
            r#"{
  "scenario": "powerlaw_cluster_10k_t1",
  "profile": "quick",
  "legacy_ns": { "sample": 0, "solve": 100, "total": 100 },
  "arena_ns": { "sample": 50, "solve": 50, "total": 100 }
}"#,
        )
        .unwrap();
        let mut history = BenchHistory::default();
        history.push(entry);
        let baseline = history.baseline_legacy_sample_ns("powerlaw_cluster_10k_t1", "quick");
        assert_eq!(baseline, Some(0.0));
        assert!(matches!(machine_factor(baseline, 1.0e6), MachineFactor::Skip(_)));
    }
}
