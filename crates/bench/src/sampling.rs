//! The legacy-vs-arena sampling+solve pipeline comparison.
//!
//! Shared by the `sampling` criterion bench and the `raf bench-json`
//! subcommand, so both measure exactly the same two pipelines:
//!
//! * **legacy** — a faithful replica of the pre-arena realization pool:
//!   every backward walk heap-allocates its own `Vec` of node ids, the
//!   parallel sampler funnels results through a `Mutex` and
//!   lexicographically sorts the whole pool, and the cover phase
//!   re-copies every path into a fresh `Vec<Vec<u32>>` (one allocation
//!   and one sort per path) before solving the duplicated family;
//! * **arena** — the current pipeline: allocation-free sampling into the
//!   flat [`PathPool`] arena, multiplicity dedup at assembly, and the
//!   zero-copy [`CoverInstance::from_path_pool`] handoff into the
//!   weighted portfolio solve.
//!
//! Both produce statistically identical pools (same seeds, same walk
//! multiset), so the wall-clock ratio is a pure data-structure
//! comparison. Cover solutions coincide on the sparse synthetic
//! workloads; on dense dataset workloads the weighted portfolio can find
//! a strictly *cheaper* union than the duplicated-family solve (its
//! p-smallest arm takes whole high-multiplicity paths where the
//! duplicated family crosses `p` on an interleaved prefix of copies), so
//! cost parity is asserted only as `arena ≤ legacy` there.
//!
//! Dataset cells additionally run the arena pipeline on the **hub-BFS
//! relabeled** layout of the same graph. Relabeled snapshots keep
//! neighbor slices in image order, so the relabeled run samples the
//! *bit-identical* pool (asserted on every run) and its timing isolates
//! the pure locality effect of the renumbering. **Bake-off** cells
//! ([`Scenario::bakeoff`]) go further and time every
//! [`RelabelOrder`] — hub-BFS, degree-descending, reverse Cuthill–McKee
//! — on the same graph in the same entry (`layout_ns`), producing the
//! apples-to-apples layout comparison at a scale (1M nodes) where
//! per-node metadata far exceeds L3 and the orders can diverge.

use raf_cover::{ChlamtacPortfolio, CoverInstance, CoverSolution, MpuSolver};
use raf_datasets::synthetic::{generate_topology, Topology};
use raf_datasets::Dataset;
use raf_graph::{generators, CsrGraph, NodeId, RelabelOrder, SocialGraph, WeightScheme};
use raf_model::frontcode::FrontCodedPool;
use raf_model::reverse::WalkOutcome;
use raf_model::sampler::{PathPool, SampleRequest, WalkKernel};
use raf_model::FriendingInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The graph family of a scenario cell: a generated structural topology
/// (the original matrix axis) or a Table-I dataset stand-in (real SNAP
/// file when one is present in `data/`).
///
/// Dataset cells additionally measure the arena pipeline on the hub-BFS
/// relabeled layout (see [`raf_graph::Relabeling::hub_bfs`]) next to the plain one,
/// recording the locality win in the same history entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A generated topology family.
    Synthetic(Topology),
    /// A Table-I dataset, scaled to the cell's node count.
    Dataset(Dataset),
}

impl Workload {
    /// The snake_case family component of the scenario name (and the
    /// `graph.kind` field of the history entry).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Workload::Synthetic(t) => t.name(),
            Workload::Dataset(d) => d.spec().file_stem,
        }
    }
}

/// One cell of the benchmark scenario matrix: a workload family at a
/// node scale, sampled with a thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Graph family.
    pub workload: Workload,
    /// Requested node count.
    pub nodes: usize,
    /// Sampler threads.
    pub threads: usize,
    /// Whether this cell runs the **layout bake-off**: the arena
    /// pipeline timed on every [`RelabelOrder`] of the same graph
    /// (hub-BFS, degree-descending, RCM), pool equality asserted across
    /// all of them. Reserved for cells whose per-node metadata far
    /// exceeds L3, where the orders can actually diverge; everywhere
    /// else only hub-BFS is timed. Bake-off cells are excluded from the
    /// `--quick` CI matrix (they run in the weekly full matrix).
    pub bakeoff: bool,
    /// Whether this cell measures the **query-serving** lineage instead
    /// of the legacy-vs-arena pipeline comparison: cold-pool vs
    /// warm-pool (cache-hit) query latency through
    /// `raf_serve::SessionContext` (see [`crate::serving`]). Serving
    /// entries record `serving_ns` percentiles and cache counters rather
    /// than `arena_ns`, so the regression gate skips them.
    pub serving: bool,
    /// Whether this cell measures the **edge-churn** lineage: sustained
    /// `apply_delta` ingestion against warm resident pools, timing the
    /// incremental repair at increasing touched-edge counts (see
    /// [`crate::churn`]). Churn entries record `churn_ns` percentiles
    /// per delta size rather than `arena_ns`, so the regression gate
    /// skips them too.
    pub churn: bool,
    /// Whether this cell measures the **multi-target campaign**
    /// lineage: k per-target pools plus the joint greedy budget
    /// allocation, against k independent single-target pipelines over
    /// the frozen legacy sampler (see [`crate::campaign`]). Campaign
    /// entries record `arena_ns`/`legacy_ns` like pipeline cells, so the
    /// regression gate covers them.
    pub campaign: bool,
}

impl Scenario {
    /// The canonical scenario name, e.g. `powerlaw_cluster_10k_t1`,
    /// `dataset_wiki_7k_t1`, `dataset_youtube_1m_t4`, or — for the
    /// query-serving lineage — `serving_wiki_7k_t1`: the key the bench
    /// history and the CI regression gate group by.
    pub fn name(&self) -> String {
        let scale = if self.nodes.is_multiple_of(1_000_000) {
            format!("{}m", self.nodes / 1_000_000)
        } else if self.nodes.is_multiple_of(1_000) {
            format!("{}k", self.nodes / 1_000)
        } else {
            self.nodes.to_string()
        };
        match self.workload {
            Workload::Synthetic(t) => format!("{}_{}_t{}", t.name(), scale, self.threads),
            Workload::Dataset(d) if self.serving => {
                format!("serving_{}_{}_t{}", d.spec().file_stem, scale, self.threads)
            }
            Workload::Dataset(d) if self.churn => {
                format!("churn_{}_{}_t{}", d.spec().file_stem, scale, self.threads)
            }
            Workload::Dataset(d) if self.campaign => {
                format!("campaign_{}_{}_t{}", d.spec().file_stem, scale, self.threads)
            }
            Workload::Dataset(d) => {
                format!("dataset_{}_{}_t{}", d.spec().file_stem, scale, self.threads)
            }
        }
    }
}

/// The full scenario matrix: every topology family × {10k, 50k} nodes ×
/// {1, 4} sampler threads, plus the `dataset` lineage — the Table-I
/// stand-ins {wiki, hepth, hepph} at full Table-I scale × {1, 4} threads,
/// a 20%-scaled Youtube cell (220k nodes — per-node metadata overflows
/// L2, where the hub-BFS relabeling win first appears), and the
/// `dataset_youtube_1m_t4` **bake-off** cell (1M nodes — metadata far
/// exceeds L3, the scale where the three [`RelabelOrder`] layouts can
/// genuinely diverge; each run times all of them) — plus the `serving`
/// lineage: cold-vs-warm query latency through the pool cache on dataset
/// cells spanning the same scale ladder, with the 1M Youtube cell (like
/// the bake-off) reserved for the weekly full matrix — plus the `churn`
/// lineage: sustained edge-delta ingestion with incremental pool repair
/// on the Wiki cell and the 220k Youtube cell (the scale where repair
/// has to beat a genuinely expensive full resample) — plus the
/// `campaign` lineage: k per-target pools with one joint greedy budget
/// allocation against k independent legacy pipelines, on the Wiki cell
/// (see [`crate::campaign`]).
pub fn scenario_matrix() -> Vec<Scenario> {
    let mut matrix = Vec::new();
    for topology in Topology::ALL {
        for nodes in [10_000usize, 50_000] {
            for threads in [1usize, 4] {
                matrix.push(Scenario {
                    workload: Workload::Synthetic(topology),
                    nodes,
                    threads,
                    bakeoff: false,
                    serving: false,
                    churn: false,
                    campaign: false,
                });
            }
        }
    }
    for dataset in [Dataset::Wiki, Dataset::HepTh, Dataset::HepPh] {
        for threads in [1usize, 4] {
            matrix.push(Scenario {
                workload: Workload::Dataset(dataset),
                nodes: dataset.spec().nodes,
                threads,
                bakeoff: false,
                serving: false,
                churn: false,
                campaign: false,
            });
        }
    }
    matrix.push(Scenario {
        workload: Workload::Dataset(Dataset::Youtube),
        nodes: 220_000,
        threads: 4,
        bakeoff: false,
        serving: false,
        churn: false,
        campaign: false,
    });
    matrix.push(Scenario {
        workload: Workload::Dataset(Dataset::Youtube),
        nodes: 1_000_000,
        threads: 4,
        bakeoff: true,
        serving: false,
        churn: false,
        campaign: false,
    });
    for (dataset, nodes, threads) in [
        (Dataset::Wiki, Dataset::Wiki.spec().nodes, 1usize),
        (Dataset::HepTh, Dataset::HepTh.spec().nodes, 1),
        (Dataset::HepPh, Dataset::HepPh.spec().nodes, 4),
        (Dataset::Youtube, 220_000, 4),
        (Dataset::Youtube, 1_000_000, 4),
    ] {
        matrix.push(Scenario {
            workload: Workload::Dataset(dataset),
            nodes,
            threads,
            bakeoff: false,
            serving: true,
            churn: false,
            campaign: false,
        });
    }
    for (dataset, nodes, threads) in
        [(Dataset::Wiki, Dataset::Wiki.spec().nodes, 1usize), (Dataset::Youtube, 220_000, 4)]
    {
        matrix.push(Scenario {
            workload: Workload::Dataset(dataset),
            nodes,
            threads,
            bakeoff: false,
            serving: false,
            churn: true,
            campaign: false,
        });
    }
    matrix.push(Scenario {
        workload: Workload::Dataset(Dataset::Wiki),
        nodes: Dataset::Wiki.spec().nodes,
        threads: 1,
        bakeoff: false,
        serving: false,
        churn: false,
        campaign: true,
    });
    matrix
}

/// The quick (CI-sized) matrix: the 10k-node synthetic slice plus the
/// dataset, serving, and churn cells (the lineages the CI gate watches) —
/// **except** the bake-off cells and the 1M-node serving cell, whose
/// 1M-node graphs belong in the weekly full-matrix job, not the per-push
/// gate.
pub fn quick_matrix() -> Vec<Scenario> {
    scenario_matrix()
        .into_iter()
        .filter(|s| match s.workload {
            Workload::Synthetic(_) => s.nodes == 10_000,
            Workload::Dataset(_) => !s.bakeoff && s.nodes < 1_000_000,
        })
        .collect()
}

/// Finds a scenario in the full matrix by [`Scenario::name`].
pub fn find_scenario(name: &str) -> Option<Scenario> {
    scenario_matrix().into_iter().find(|s| s.name() == name)
}

/// Measurement profile: how heavy each scenario run is. `Quick` trades
/// precision for CI wall-clock (fewer walks, fewer reps) and is tracked
/// as a separate history lineage so full and quick runs never gate
/// against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchProfile {
    /// Committed-history profile: 200k walks, best of 5.
    Full,
    /// CI regression profile: 30k walks, best of 2.
    Quick,
}

impl BenchProfile {
    /// The history-lineage label.
    pub fn name(self) -> &'static str {
        match self {
            BenchProfile::Full => "full",
            BenchProfile::Quick => "quick",
        }
    }

    /// Walks per pipeline run.
    pub fn walks(self) -> u64 {
        match self {
            BenchProfile::Full => 200_000,
            BenchProfile::Quick => 30_000,
        }
    }

    /// Timed repetitions per pipeline (minimum is reported).
    pub fn reps(self) -> usize {
        match self {
            BenchProfile::Full => 5,
            BenchProfile::Quick => 2,
        }
    }
}

/// The benchmark configuration for one scenario cell under a profile.
pub fn scenario_config(scenario: Scenario, profile: BenchProfile) -> SamplingBenchConfig {
    SamplingBenchConfig {
        workload: scenario.workload,
        nodes: scenario.nodes,
        threads: scenario.threads,
        bakeoff: scenario.bakeoff,
        walks: profile.walks(),
        reps: profile.reps(),
        profile: profile.name(),
        ..Default::default()
    }
}

/// Knobs of one pipeline comparison run.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingBenchConfig {
    /// Graph family of the generated workload.
    pub workload: Workload,
    /// Nodes of the generated graph.
    pub nodes: usize,
    /// Backward walks per pipeline run (`l`).
    pub walks: u64,
    /// Master RNG seed (graph generation, pair screening, sampling).
    pub seed: u64,
    /// Sampler threads (both pipelines use the same count).
    pub threads: usize,
    /// Timed repetitions per pipeline; the minimum is reported.
    pub reps: usize,
    /// Covering fraction `β` used to derive the cover requirement `p`.
    pub beta: f64,
    /// History-lineage label (see [`BenchProfile`]).
    pub profile: &'static str,
    /// Whether to time every [`RelabelOrder`] layout (see
    /// [`Scenario::bakeoff`]); dataset cells time hub-BFS alone otherwise.
    pub bakeoff: bool,
    /// Walk kernel the arena pipeline samples with (never changes pools,
    /// only speed). Dataset cells additionally run the **kernel
    /// bake-off** — both kernels timed on the same workload with pool
    /// equality asserted on every rep — regardless of this setting.
    pub kernel: WalkKernel,
}

impl Default for SamplingBenchConfig {
    fn default() -> Self {
        SamplingBenchConfig {
            workload: Workload::Synthetic(Topology::PowerlawCluster),
            nodes: 10_000,
            walks: 200_000,
            seed: 7,
            threads: 1,
            reps: 5,
            beta: 0.3,
            profile: BenchProfile::Full.name(),
            bakeoff: false,
            kernel: WalkKernel::Scalar,
        }
    }
}

impl SamplingBenchConfig {
    /// The scenario cell this configuration measures.
    pub fn scenario(&self) -> Scenario {
        Scenario {
            workload: self.workload,
            nodes: self.nodes,
            threads: self.threads,
            bakeoff: self.bakeoff,
            // The pipeline comparison never runs on serving or churn
            // cells (those route through `crate::serving` and
            // `crate::churn`), so this is always a plain pipeline
            // scenario.
            serving: false,
            churn: false,
            campaign: false,
        }
    }
}

/// Measured outcome of one legacy-vs-arena comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingBenchReport {
    /// The configuration that produced this report.
    pub config: SamplingBenchConfig,
    /// Actual nodes of the generated graph (the grid topology rounds the
    /// requested `config.nodes` to its lattice dimensions).
    pub nodes: usize,
    /// Edges of the generated graph.
    pub edges: usize,
    /// The screened `(s, t)` pair.
    pub pair: (usize, usize),
    /// Type-1 walks in the pool (with multiplicity).
    pub type1: usize,
    /// Distinct type-1 paths after dedup.
    pub unique_paths: usize,
    /// The pool's `p_max` estimate.
    pub pmax_estimate: f64,
    /// Cover requirement `p = ceil(β · |B¹_l|)`.
    pub cover_p: usize,
    /// Legacy pipeline: best-of-reps sampling time (ns).
    pub legacy_sample_ns: u128,
    /// Legacy pipeline: best-of-reps cover-build + solve time (ns).
    pub legacy_solve_ns: u128,
    /// Arena pipeline: best-of-reps sampling time (ns).
    pub arena_sample_ns: u128,
    /// Arena pipeline: best-of-reps cover-build + solve time (ns).
    pub arena_solve_ns: u128,
    /// Arena pipeline on the hub-BFS relabeled layout: best-of-reps
    /// sampling time (ns). Measured only for dataset workloads; 0 means
    /// not measured.
    pub relabeled_sample_ns: u128,
    /// Arena pipeline on the hub-BFS relabeled layout: best-of-reps
    /// cover-build + solve time (ns). 0 means not measured.
    pub relabeled_solve_ns: u128,
    /// Per-order layout timings of the bake-off (one entry per measured
    /// [`RelabelOrder`]; hub-BFS only for ordinary dataset cells, all
    /// three for bake-off cells, empty for synthetic cells).
    pub layouts: Vec<LayoutTiming>,
    /// Kernel bake-off: best-of-reps sampling time (ns) of the scalar
    /// kernel at [`SamplingBenchReport::kernel_lanes`] lanes. Measured
    /// only for dataset workloads; 0 means not measured.
    pub kernel_scalar_ns: u128,
    /// Kernel bake-off: best-of-reps sampling time (ns) of the lockstep
    /// kernel on the *bit-identical* pool (equality asserted per rep).
    /// 0 means not measured.
    pub kernel_lockstep_ns: u128,
    /// Lane count both bake-off kernels ran with (16 per OS thread, so
    /// the cohort width — not the thread count — is what differs from
    /// the legacy-compatible arena run).
    pub kernel_lanes: usize,
    /// Heap bytes of the sampled pool's flat arena.
    pub pool_arena_bytes: usize,
    /// Heap bytes of the same pool front-coded (see
    /// [`raf_model::frontcode::FrontCodedPool`]).
    pub pool_frontcoded_bytes: usize,
    /// Union cost of the legacy solve.
    pub legacy_cost: usize,
    /// Union cost of the arena solve.
    pub arena_cost: usize,
}

/// Best-of-reps arena timings of one relabeled layout, measured on a
/// pool asserted bit-identical to the plain layout's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutTiming {
    /// The layout order measured.
    pub order: RelabelOrder,
    /// Best-of-reps sampling time (ns).
    pub sample_ns: u128,
    /// Best-of-reps cover-build + solve time (ns).
    pub solve_ns: u128,
}

impl LayoutTiming {
    /// Sampling + solve total (ns).
    pub fn total_ns(&self) -> u128 {
        self.sample_ns + self.solve_ns
    }
}

impl SamplingBenchReport {
    /// End-to-end (sampling + solve) speedup of arena over legacy.
    pub fn speedup(&self) -> f64 {
        let legacy = (self.legacy_sample_ns + self.legacy_solve_ns) as f64;
        let arena = (self.arena_sample_ns + self.arena_solve_ns) as f64;
        if arena == 0.0 {
            f64::INFINITY
        } else {
            legacy / arena
        }
    }

    /// Dedup factor: sampled type-1 walks per distinct path.
    pub fn dedup_factor(&self) -> f64 {
        if self.unique_paths == 0 {
            1.0
        } else {
            self.type1 as f64 / self.unique_paths as f64
        }
    }

    /// Whether the hub-BFS relabeled layout was measured (dataset cells).
    pub fn has_relabeled(&self) -> bool {
        self.relabeled_sample_ns + self.relabeled_solve_ns > 0
    }

    /// Sampling+solve speedup of the hub-BFS relabeled layout over the
    /// plain arena layout (1.0 when not measured).
    pub fn relabel_speedup(&self) -> f64 {
        if !self.has_relabeled() {
            return 1.0;
        }
        let plain = (self.arena_sample_ns + self.arena_solve_ns) as f64;
        let hub = (self.relabeled_sample_ns + self.relabeled_solve_ns) as f64;
        if hub == 0.0 {
            f64::INFINITY
        } else {
            plain / hub
        }
    }

    /// Whether the kernel bake-off ran (dataset cells).
    pub fn has_kernels(&self) -> bool {
        self.kernel_scalar_ns > 0 && self.kernel_lockstep_ns > 0
    }

    /// Sampling speedup of the lockstep kernel over the scalar kernel at
    /// the same lane count (1.0 when not measured).
    pub fn kernel_speedup(&self) -> f64 {
        if !self.has_kernels() {
            return 1.0;
        }
        self.kernel_scalar_ns as f64 / self.kernel_lockstep_ns as f64
    }

    /// Hand-rolled JSON rendering (the workspace's serde is an offline
    /// no-op shim), stable field order: one `BENCH_sampling.json` history
    /// entry (see [`crate::history`]). Dataset cells add a
    /// `relabeled_ns` object — the arena pipeline on the hub-BFS layout —
    /// and a `relabel_speedup` next to the legacy-vs-arena `speedup`,
    /// plus a `kernel_ns` object (scalar vs lockstep sampling at the
    /// bake-off lane count) and a `kernel_speedup`; bake-off cells
    /// additionally record a `layout_ns` object with one
    /// `{ sample, solve, total }` triple per measured [`RelabelOrder`].
    pub fn to_json(&self) -> String {
        let mut relabeled = if self.has_relabeled() {
            format!(
                "  \"relabeled_ns\": {{ \"sample\": {}, \"solve\": {}, \"total\": {} }},\n  \
                 \"relabel_speedup\": {:.3},\n",
                self.relabeled_sample_ns,
                self.relabeled_solve_ns,
                self.relabeled_sample_ns + self.relabeled_solve_ns,
                self.relabel_speedup(),
            )
        } else {
            String::new()
        };
        if self.layouts.len() > 1 {
            let columns: Vec<String> = self
                .layouts
                .iter()
                .map(|l| {
                    format!(
                        "\"{}\": {{ \"sample\": {}, \"solve\": {}, \"total\": {} }}",
                        l.order.name(),
                        l.sample_ns,
                        l.solve_ns,
                        l.total_ns(),
                    )
                })
                .collect();
            relabeled.push_str(&format!("  \"layout_ns\": {{ {} }},\n", columns.join(", ")));
        }
        if self.has_kernels() {
            relabeled.push_str(&format!(
                "  \"kernel_ns\": {{ \"scalar\": {}, \"lockstep\": {}, \"lanes\": {} }},\n  \
                 \"kernel_speedup\": {:.3},\n",
                self.kernel_scalar_ns,
                self.kernel_lockstep_ns,
                self.kernel_lanes,
                self.kernel_speedup(),
            ));
        }
        format!(
            "{{\n  \"scenario\": \"{}\",\n  \"profile\": \"{}\",\n  \"graph\": {{ \"kind\": \"{}\", \"nodes\": {}, \"edges\": {}, \"s\": {}, \"t\": {} }},\n  \"config\": {{ \"walks\": {}, \"seed\": {}, \"threads\": {}, \"reps\": {}, \"beta\": {}, \"kernel\": \"{}\" }},\n  \"pool\": {{ \"type1\": {}, \"unique_paths\": {}, \"dedup_factor\": {:.3}, \"pmax_estimate\": {:.6}, \"cover_p\": {}, \"arena_bytes\": {}, \"frontcoded_bytes\": {} }},\n  \"legacy_ns\": {{ \"sample\": {}, \"solve\": {}, \"total\": {} }},\n  \"arena_ns\": {{ \"sample\": {}, \"solve\": {}, \"total\": {} }},\n{relabeled}  \"cost\": {{ \"legacy\": {}, \"arena\": {} }},\n  \"speedup\": {:.3}\n}}\n",
            self.config.scenario().name(),
            self.config.profile,
            self.config.workload.kind_name(),
            self.nodes,
            self.edges,
            self.pair.0,
            self.pair.1,
            self.config.walks,
            self.config.seed,
            self.config.threads,
            self.config.reps,
            self.config.beta,
            self.config.kernel,
            self.type1,
            self.unique_paths,
            self.dedup_factor(),
            self.pmax_estimate,
            self.cover_p,
            self.pool_arena_bytes,
            self.pool_frontcoded_bytes,
            self.legacy_sample_ns,
            self.legacy_solve_ns,
            self.legacy_sample_ns + self.legacy_solve_ns,
            self.arena_sample_ns,
            self.arena_solve_ns,
            self.arena_sample_ns + self.arena_solve_ns,
            self.legacy_cost,
            self.arena_cost,
            self.speedup(),
        )
    }
}

/// Builds the classic benchmark workload: a Holme–Kim powerlaw-cluster
/// graph and a screened `(s, t)` pair (kept as-is so the criterion bench
/// and the historical `powerlaw_cluster_10k_t1` entries stay comparable
/// across PRs).
pub fn workload(nodes: usize, seed: u64) -> (CsrGraph, NodeId, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let csr = generators::powerlaw_cluster(nodes, 2, 0.3, &mut rng)
        .expect("valid powerlaw-cluster parameters")
        .build(WeightScheme::UniformByDegree)
        .expect("generator emits a valid graph")
        .to_csr();
    screened_pair(csr, seed)
}

/// Builds the workload for any scenario topology: generate the graph,
/// then screen a small pair batch per the paper's `p_max ≥ 0.01`
/// protocol and keep the highest-`p_max` pair — the representative hot
/// workload (a well-connected target is where pools are type-1-rich and
/// the cover phase does real work).
pub fn scenario_workload(
    topology: Topology,
    nodes: usize,
    seed: u64,
) -> (CsrGraph, NodeId, NodeId) {
    if topology == Topology::PowerlawCluster {
        // The classic workload generates from the bare seed (not the
        // topology-hashed one); keep its graphs byte-identical.
        return workload(nodes, seed);
    }
    let csr = generate_topology(topology, nodes, seed)
        .expect("valid scenario topology parameters")
        .to_csr();
    screened_pair(csr, seed)
}

/// A fully prepared scenario workload: the plain-layout snapshot with a
/// screened pair, plus — for dataset cells — the source graph and the
/// [`RelabelOrder`]s whose layouts the runner builds *one at a time*
/// (hub-BFS only, or every order for bake-off cells; a 1M-node CSR is
/// ~hundreds of MB, so holding all three relabeled copies simultaneously
/// would triple peak memory for no measurement benefit). Their arena
/// timings go into the `relabeled_ns` / `layout_ns` history fields.
pub struct PreparedWorkload {
    /// Plain-layout snapshot.
    pub csr: CsrGraph,
    /// The source graph relabeled layouts are built from on demand
    /// (dataset workloads only).
    pub social: Option<SocialGraph>,
    /// The layout orders to measure, in [`RelabelOrder::ALL`] order
    /// (empty for synthetic cells).
    pub orders: Vec<RelabelOrder>,
    /// The screened initiator (original/plain ids).
    pub s: NodeId,
    /// The screened target (original/plain ids).
    pub t: NodeId,
}

/// Prepares a [`Workload`]: synthetic families generate as before;
/// dataset cells load via `raf_datasets` (real SNAP file in `data/` when
/// present, calibrated stand-in otherwise) at `nodes / table_i_nodes`
/// scale and select the relabeled layout(s) to measure — hub-BFS alone,
/// or all of [`RelabelOrder::ALL`] when `bakeoff` is set.
pub fn prepare_workload(
    workload_kind: Workload,
    nodes: usize,
    seed: u64,
    bakeoff: bool,
) -> PreparedWorkload {
    match workload_kind {
        Workload::Synthetic(topology) => {
            let (csr, s, t) = scenario_workload(topology, nodes, seed);
            PreparedWorkload { csr, social: None, orders: Vec::new(), s, t }
        }
        Workload::Dataset(dataset) => {
            let scale = nodes as f64 / dataset.spec().nodes as f64;
            let social =
                raf_datasets::load_dataset(dataset, scale, seed, std::path::Path::new("data"))
                    .expect("dataset stand-in generation cannot fail at bench scales")
                    .graph;
            let orders =
                if bakeoff { RelabelOrder::ALL.to_vec() } else { vec![RelabelOrder::HubBfs] };
            let (csr, s, t) = screened_pair(social.to_csr(), seed);
            PreparedWorkload { csr, social: Some(social), orders, s, t }
        }
    }
}

fn screened_pair(csr: CsrGraph, seed: u64) -> (CsrGraph, NodeId, NodeId) {
    let pairs = raf_datasets::sample_pairs(
        &csr,
        &raf_datasets::PairSamplerConfig {
            pairs: 8,
            screen_samples: 2_000,
            seed,
            ..Default::default()
        },
    );
    let p = pairs
        .iter()
        .max_by(|a, b| a.pmax_estimate.total_cmp(&b.pmax_estimate))
        .expect("screening found a feasible pair");
    let (s, t) = (NodeId::new(p.s as usize), NodeId::new(p.t as usize));
    (csr, s, t)
}

/// The pre-arena pool: every type-1 walk keeps its own `Vec` of node ids.
pub struct LegacyPool {
    /// The type-1 paths, one `Vec<NodeId>` each (duplicates included).
    pub type1_paths: Vec<Vec<NodeId>>,
    /// Walks sampled in total.
    pub total_samples: u64,
}

/// Replica of the pre-arena `CsrGraph` storage: per-node metadata
/// scattered across an offset table, a totals table, and a uniform-flag
/// table (the layout this PR replaced with one packed record per node).
///
/// Selections replicate the pre-arena arithmetic verbatim: the uniform
/// fast path computes `⌊(r / total) · d⌋`, while the packed graph now
/// precomputes `⌊r · (d / total)⌋`. The two double-rounded products
/// agree except when a draw lands within an ulp of a bucket boundary on
/// a node whose `total ≠ 1.0` (probability ~1e-16 per draw), so walk
/// parity with the live sampler is exact in practice and *deterministic*
/// under the fixed seeds the equivalence tests use — but it is no longer
/// bit-guaranteed by construction. On non-uniform nodes the cumulative
/// table is *reconstructed* from rounded `in_weight` differences and may
/// likewise diverge in the last ulps at bucket boundaries; don't rely on
/// exact walk parity for non-uniform weight schemes.
pub struct LegacyCsr {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    cum_weights: Vec<f64>,
    totals: Vec<f64>,
    uniform: Vec<bool>,
}

impl LegacyCsr {
    /// Reconstructs the scattered pre-arena layout from a [`CsrGraph`].
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        let mut cum_weights = Vec::new();
        let mut totals = Vec::with_capacity(n);
        let mut uniform = Vec::with_capacity(n);
        offsets.push(0);
        for v in g.nodes() {
            let ns = g.neighbors(v);
            neighbors.extend_from_slice(ns);
            let mut acc = 0.0;
            let first = ns.first().map(|&u| g.in_weight(u, v).expect("edge weight"));
            let mut is_uniform = true;
            for &u in ns {
                let w = g.in_weight(u, v).expect("edge weight");
                acc += w;
                cum_weights.push(acc);
                if let Some(f) = first {
                    if (w - f).abs() > 1e-15 {
                        is_uniform = false;
                    }
                }
            }
            // Use the graph's own total (exact prefix-sum value) so the
            // `r >= total` boundary matches bit for bit.
            totals.push(g.total_in_weight(v));
            uniform.push(is_uniform);
            offsets.push(neighbors.len());
        }
        LegacyCsr { offsets, neighbors, cum_weights, totals, uniform }
    }

    /// Verbatim pre-arena `select_with`: scattered loads, unconditional
    /// division on the uniform fast path.
    #[inline]
    fn select_with(&self, v: NodeId, r: f64) -> Option<NodeId> {
        let i = v.index();
        let total = self.totals[i];
        if r >= total {
            return None;
        }
        let base = self.offsets[i];
        let d = self.offsets[i + 1] - base;
        if self.uniform[i] {
            let idx = ((r / total) * d as f64) as usize;
            return Some(self.neighbors[base + idx.min(d - 1)]);
        }
        let slice = &self.cum_weights[base..base + d];
        let idx = slice.partition_point(|&c| c <= r);
        Some(self.neighbors[base + idx.min(d - 1)])
    }
}

/// Verbatim replica of the pre-arena `sample_target_path` hot loop: the
/// walk builds its own `vec![t, …]` (one allocation plus incremental
/// regrowth per walk) over the scattered [`LegacyCsr`] layout — exactly
/// the cost model the arena sampler removed. The RNG draw sequence and
/// every selection are identical to [`raf_model::reverse::sample_walk_into`]
/// on the packed graph, so both pipelines sample the same walk multiset
/// for a fixed seed.
fn legacy_sample_target_path<R: rand::Rng>(
    instance: &FriendingInstance<'_>,
    csr: &LegacyCsr,
    rng: &mut R,
) -> (Vec<NodeId>, WalkOutcome) {
    let mut nodes = vec![instance.target()];
    let mut overflow: Option<std::collections::HashSet<NodeId>> = None;
    const SCAN_LIMIT: usize = 64;
    let mut current = instance.target();
    loop {
        match csr.select_with(current, rng.gen::<f64>()) {
            None => return (nodes, WalkOutcome::Dangling),
            Some(next) => {
                let revisited = match &overflow {
                    Some(set) => set.contains(&next),
                    None => nodes.contains(&next),
                };
                if revisited {
                    return (nodes, WalkOutcome::Cycle);
                }
                if instance.is_seed(next) {
                    return (nodes, WalkOutcome::ReachedSeed);
                }
                nodes.push(next);
                if overflow.is_none() && nodes.len() > SCAN_LIMIT {
                    overflow = Some(nodes.iter().copied().collect());
                } else if let Some(set) = &mut overflow {
                    set.insert(next);
                }
                current = next;
            }
        }
    }
}

/// Replica of the pre-arena sampler: per-walk allocation, and — exactly
/// as in the pre-arena code — `Mutex` aggregation plus a global
/// lexicographic sort of the pool only on the multi-threaded path (the
/// sequential fallback returned the pool unsorted).
pub fn legacy_sample_pool(
    instance: &FriendingInstance<'_>,
    csr: &LegacyCsr,
    l: u64,
    master_seed: u64,
    threads: usize,
) -> LegacyPool {
    let threads = threads.max(1);
    let sample_share = |seed: u64, share: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut local: Vec<Vec<NodeId>> = Vec::new();
        for _ in 0..share {
            let (nodes, outcome) = legacy_sample_target_path(instance, csr, &mut rng);
            if outcome == WalkOutcome::ReachedSeed {
                local.push(nodes);
            }
        }
        local
    };
    let type1_paths = if threads == 1 || l < raf_model::sampler::PARALLEL_THRESHOLD {
        sample_share(master_seed, l)
    } else {
        let collected: Mutex<Vec<Vec<NodeId>>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for i in 0..threads {
                let share = l / threads as u64 + u64::from((l % threads as u64) > i as u64);
                let collected = &collected;
                let sample_share = &sample_share;
                scope.spawn(move || {
                    let local = sample_share(master_seed ^ legacy_splitmix64(i as u64 + 1), share);
                    collected.lock().expect("legacy sampler mutex").extend(local);
                });
            }
        });
        let mut pool = collected.into_inner().expect("legacy sampler mutex");
        // Deterministic order regardless of thread interleaving (the
        // pre-arena code sorted only here, not on the sequential path).
        pool.sort();
        pool
    };
    LegacyPool { type1_paths, total_samples: l }
}

fn legacy_splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Legacy cover phase: re-copy every path into a fresh per-set `Vec`
/// (the pre-arena `NodeId` → `u32` conversion), normalize (sort) each,
/// and solve the duplicated family.
pub fn legacy_solve(universe: usize, pool: &LegacyPool, beta: f64) -> CoverSolution {
    let sets: Vec<Vec<u32>> =
        pool.type1_paths.iter().map(|tp| tp.iter().map(|v| v.index() as u32).collect()).collect();
    let b1 = sets.len();
    let cover = CoverInstance::new(universe, sets).expect("legacy sets in range");
    let p = raf_cover::cover_requirement(beta, b1);
    ChlamtacPortfolio::new().solve(&cover, p).expect("feasible legacy instance")
}

/// Arena sampling: the current `PathPool` pipeline, through the unified
/// [`SampleRequest`] API. The kernel never changes the pool, only speed.
pub fn arena_sample_pool(
    instance: &FriendingInstance<'_>,
    l: u64,
    master_seed: u64,
    threads: usize,
    kernel: WalkKernel,
) -> PathPool {
    SampleRequest::new(l).seed(master_seed).threads(threads).kernel(kernel).run(instance)
}

/// Arena cover phase: zero-copy handoff and weighted portfolio solve.
pub fn arena_solve(universe: usize, pool: PathPool, beta: f64) -> CoverSolution {
    let b1 = pool.type1_count();
    let cover = CoverInstance::from_path_pool(universe, pool).expect("pool ids in range");
    let p = raf_cover::cover_requirement(beta, b1);
    ChlamtacPortfolio::new().solve(&cover, p).expect("feasible arena instance")
}

/// Runs the full comparison: both pipelines `reps` times each on the same
/// workload, reporting best-of-reps phase timings and solution costs.
/// Dataset workloads additionally time the arena pipeline on the
/// relabeled layout(s) — hub-BFS, or the full [`RelabelOrder`] bake-off —
/// after asserting each layout's pool is bit-identical to the plain
/// layout's (the relabeling equivariance guarantee).
pub fn run_sampling_bench(config: SamplingBenchConfig) -> SamplingBenchReport {
    let prepared = prepare_workload(config.workload, config.nodes, config.seed, config.bakeoff);
    let (csr, s, t) = (&prepared.csr, prepared.s, prepared.t);
    let instance = FriendingInstance::new(csr, s, t).expect("screened pair is valid");
    let n = csr.node_count();
    let legacy_csr = LegacyCsr::from_csr(csr);

    let mut legacy_sample_ns = u128::MAX;
    let mut legacy_solve_ns = u128::MAX;
    let mut legacy_cost = 0usize;
    for _ in 0..config.reps.max(1) {
        let start = Instant::now();
        let pool =
            legacy_sample_pool(&instance, &legacy_csr, config.walks, config.seed, config.threads);
        legacy_sample_ns = legacy_sample_ns.min(start.elapsed().as_nanos());
        if pool.type1_paths.is_empty() {
            panic!("degenerate workload: no type-1 walks; change the seed");
        }
        let start = Instant::now();
        let sol = legacy_solve(n, &pool, config.beta);
        legacy_solve_ns = legacy_solve_ns.min(start.elapsed().as_nanos());
        legacy_cost = sol.cost();
    }

    let mut arena_sample_ns = u128::MAX;
    let mut arena_solve_ns = u128::MAX;
    let mut arena_cost = 0usize;
    let mut type1 = 0usize;
    let mut unique_paths = 0usize;
    let mut pmax_estimate = 0.0f64;
    let mut cover_p = 0usize;
    let mut pool_arena_bytes = 0usize;
    let mut pool_frontcoded_bytes = 0usize;
    for _ in 0..config.reps.max(1) {
        let start = Instant::now();
        let pool =
            arena_sample_pool(&instance, config.walks, config.seed, config.threads, config.kernel);
        arena_sample_ns = arena_sample_ns.min(start.elapsed().as_nanos());
        type1 = pool.type1_count();
        unique_paths = pool.unique_count();
        pmax_estimate = pool.pmax_estimate();
        cover_p = raf_cover::cover_requirement(config.beta, type1);
        pool_arena_bytes = pool.heap_bytes();
        pool_frontcoded_bytes = FrontCodedPool::from_pool(&pool).heap_bytes();
        let start = Instant::now();
        let sol = arena_solve(n, pool, config.beta);
        arena_solve_ns = arena_solve_ns.min(start.elapsed().as_nanos());
        arena_cost = sol.cost();
    }

    // Kernel bake-off: dataset cells time both walk kernels at a fixed
    // cohort width (16 lanes per OS thread — wide enough to keep that
    // many prefetches in flight, narrow enough that the lane states sit
    // in L1). Lanes, not threads, so the comparison isolates the kernel
    // itself; every rep's pool is asserted bit-identical to the
    // reference, which is what licenses calling this a *kernel* change.
    let mut kernel_scalar_ns = 0u128;
    let mut kernel_lockstep_ns = 0u128;
    let kernel_lanes = 16 * config.threads.max(1);
    if matches!(config.workload, Workload::Dataset(_)) {
        let reference = SampleRequest::new(config.walks)
            .seed(config.seed)
            .threads(config.threads)
            .lanes(kernel_lanes)
            .run(&instance);
        for kernel in WalkKernel::ALL {
            let mut best = u128::MAX;
            for _ in 0..config.reps.max(1) {
                let start = Instant::now();
                let pool = SampleRequest::new(config.walks)
                    .seed(config.seed)
                    .threads(config.threads)
                    .lanes(kernel_lanes)
                    .kernel(kernel)
                    .run(&instance);
                best = best.min(start.elapsed().as_nanos());
                assert_eq!(reference, pool, "{kernel} kernel diverged from the reference pool");
            }
            match kernel {
                WalkKernel::Scalar => kernel_scalar_ns = best,
                WalkKernel::Lockstep => kernel_lockstep_ns = best,
                // `ALL` holds only concrete kernels; `Auto` is a
                // resolution policy, never timed as its own lane.
                WalkKernel::Auto => unreachable!("Auto is not in WalkKernel::ALL"),
            }
        }
    }

    let mut relabeled_sample_ns = 0u128;
    let mut relabeled_solve_ns = 0u128;
    let mut layouts: Vec<LayoutTiming> = Vec::with_capacity(prepared.orders.len());
    if let Some(social) = &prepared.social {
        // Equivariance reference: every layout must sample the exact
        // same (original-space) pool — any divergence would mean the
        // timings measure different work.
        let plain_pool =
            arena_sample_pool(&instance, config.walks, config.seed, config.threads, config.kernel);
        for &order in &prepared.orders {
            // Built (and dropped) per order: one relabeled snapshot
            // resident at a time, not the whole bake-off slate.
            let relabeling = Arc::new(order.relabeling(social));
            let layout_csr = social.to_csr_relabeled(&relabeling);
            let layout_instance =
                FriendingInstance::relabeled(&layout_csr, s, t, relabeling.clone())
                    .expect("screened pair is valid under relabeling");
            let layout_pool = arena_sample_pool(
                &layout_instance,
                config.walks,
                config.seed,
                config.threads,
                config.kernel,
            );
            assert_eq!(
                plain_pool,
                layout_pool,
                "{} layout diverged from the plain layout",
                order.name()
            );
            let mut sample_ns = u128::MAX;
            let mut solve_ns = u128::MAX;
            for _ in 0..config.reps.max(1) {
                let start = Instant::now();
                let pool = arena_sample_pool(
                    &layout_instance,
                    config.walks,
                    config.seed,
                    config.threads,
                    config.kernel,
                );
                sample_ns = sample_ns.min(start.elapsed().as_nanos());
                let start = Instant::now();
                let sol = arena_solve(n, pool, config.beta);
                solve_ns = solve_ns.min(start.elapsed().as_nanos());
                assert_eq!(
                    sol.cost(),
                    arena_cost,
                    "{} solve diverged from the plain solve",
                    order.name()
                );
            }
            if order == RelabelOrder::HubBfs {
                relabeled_sample_ns = sample_ns;
                relabeled_solve_ns = solve_ns;
            }
            layouts.push(LayoutTiming { order, sample_ns, solve_ns });
        }
    }

    SamplingBenchReport {
        config,
        nodes: csr.node_count(),
        edges: csr.edge_count(),
        pair: (s.index(), t.index()),
        type1,
        unique_paths,
        pmax_estimate,
        cover_p,
        legacy_sample_ns,
        legacy_solve_ns,
        arena_sample_ns,
        arena_solve_ns,
        relabeled_sample_ns,
        relabeled_solve_ns,
        layouts,
        kernel_scalar_ns,
        kernel_lockstep_ns,
        kernel_lanes,
        pool_arena_bytes,
        pool_frontcoded_bytes,
        legacy_cost,
        arena_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Legacy sort-dedup vs arena streaming interner: exact multiset
    /// equality of `(path, multiplicity)` pairs for one `(seed, threads)`
    /// walk multiset.
    fn assert_pipelines_agree(nodes: usize, walks: u64, seed: u64, threads: usize) {
        let (csr, s, t) = workload(nodes, seed);
        let instance = FriendingInstance::new(&csr, s, t).unwrap();
        let legacy_csr = LegacyCsr::from_csr(&csr);
        let legacy = legacy_sample_pool(&instance, &legacy_csr, walks, seed, threads);
        let arena = arena_sample_pool(&instance, walks, seed, threads, WalkKernel::Scalar);
        // The lockstep kernel is pure reordering: same pool, any kernel.
        let lockstep = arena_sample_pool(&instance, walks, seed, threads, WalkKernel::Lockstep);
        assert_eq!(arena, lockstep, "threads={threads}");
        // Same seeds ⇒ the exact same walk multiset ⇒ identical pmax.
        assert_eq!(legacy.type1_paths.len(), arena.type1_count(), "threads={threads}");
        let legacy_pmax = legacy.type1_paths.len() as f64 / walks as f64;
        assert_eq!(arena.pmax_estimate(), legacy_pmax, "threads={threads}");
        let total: usize = arena.iter().map(|(_, m)| m as usize).sum();
        assert_eq!(total, arena.type1_count());
        // Legacy-with-duplicates vs arena sorted-unique: sorting the
        // legacy walks (the multi-threaded legacy path is pre-sorted, the
        // sequential one unsorted, as in the pre-arena code) and
        // run-length encoding must equal the arena.
        let mut as_u32: Vec<Vec<u32>> = legacy
            .type1_paths
            .iter()
            .map(|tp| tp.iter().map(|v| v.index() as u32).collect())
            .collect();
        as_u32.sort();
        let mut runs: Vec<(&[u32], usize)> = Vec::new();
        for p in &as_u32 {
            match runs.last_mut() {
                Some((path, count)) if *path == p.as_slice() => *count += 1,
                _ => runs.push((p.as_slice(), 1)),
            }
        }
        assert_eq!(runs.len(), arena.unique_count(), "threads={threads}");
        for (i, (path, count)) in runs.iter().enumerate() {
            assert_eq!(*path, arena.path(i), "threads={threads}");
            assert_eq!(*count, arena.multiplicity(i) as usize, "threads={threads}");
        }
    }

    #[test]
    fn pipelines_agree_on_pool_statistics() {
        assert_pipelines_agree(400, 20_000, 3, 1);
    }

    #[test]
    fn pipelines_agree_across_thread_counts_and_seeds() {
        // l ≥ PARALLEL_THRESHOLD so threads > 1 exercises the per-thread
        // interner merge against the legacy mutex-and-sort aggregation,
        // including whatever RAF_THREADS the CI matrix sets.
        let env = raf_model::sampler::threads_from_env();
        for seed in [3u64, 11] {
            for threads in [1usize, 2, 4, env] {
                assert_pipelines_agree(400, 20_000, seed, threads);
            }
        }
    }

    #[test]
    fn scenario_matrix_covers_the_spec() {
        let matrix = scenario_matrix();
        // Synthetic lineage (4 × 2 × 2) plus the dataset lineage:
        // {wiki, hepth, hepph} × {1, 4}, the scaled Youtube cell, and
        // the 1M-node Youtube bake-off cell — plus the 5 serving cells,
        // the 2 churn cells, and the 1 campaign cell.
        assert_eq!(matrix.len(), Topology::ALL.len() * 2 * 2 + 3 * 2 + 2 + 5 + 2 + 1);
        let names: std::collections::HashSet<String> = matrix.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), matrix.len(), "scenario names collide");
        for required in [
            "powerlaw_cluster_10k_t1",
            "powerlaw_cluster_50k_t4",
            "erdos_renyi_10k_t1",
            "erdos_renyi_50k_t4",
            "grid_10k_t4",
            "ring_50k_t1",
            "dataset_wiki_7k_t1",
            "dataset_wiki_7k_t4",
            "dataset_hepth_28k_t1",
            "dataset_hepph_35k_t4",
            "dataset_youtube_220k_t4",
            "dataset_youtube_1m_t4",
            "serving_wiki_7k_t1",
            "serving_hepth_28k_t1",
            "serving_hepph_35k_t4",
            "serving_youtube_220k_t4",
            "serving_youtube_1m_t4",
            "churn_wiki_7k_t1",
            "churn_youtube_220k_t4",
            "campaign_wiki_7k_t1",
        ] {
            assert!(names.contains(required), "matrix lacks {required}");
            assert!(find_scenario(required).is_some());
        }
        assert!(find_scenario("no_such_scenario").is_none());
        // The 1M cell is the bake-off cell; nothing else is.
        let one_m = find_scenario("dataset_youtube_1m_t4").unwrap();
        assert!(one_m.bakeoff && one_m.nodes == 1_000_000);
        assert_eq!(matrix.iter().filter(|s| s.bakeoff).count(), 1);
        // Serving cells are dataset-only and never double as bake-offs.
        assert_eq!(matrix.iter().filter(|s| s.serving).count(), 5);
        assert!(matrix
            .iter()
            .filter(|s| s.serving)
            .all(|s| matches!(s.workload, Workload::Dataset(_)) && !s.bakeoff));
        // Churn cells are dataset-only and never double as serving or
        // bake-off cells.
        assert_eq!(matrix.iter().filter(|s| s.churn).count(), 2);
        assert!(matrix.iter().filter(|s| s.churn).all(|s| matches!(
            s.workload,
            Workload::Dataset(_)
        ) && !s.bakeoff
            && !s.serving));
        // The campaign cell is dataset-only and belongs to no other
        // lineage.
        assert_eq!(matrix.iter().filter(|s| s.campaign).count(), 1);
        assert!(matrix.iter().filter(|s| s.campaign).all(|s| matches!(
            s.workload,
            Workload::Dataset(_)
        ) && !s.bakeoff
            && !s.serving
            && !s.churn));
        // Quick keeps the synthetic 10k slice and every non-bake-off
        // dataset/serving/churn/campaign cell below 1M nodes; the 1M
        // graphs belong to the weekly full matrix.
        let quick = quick_matrix();
        assert!(quick
            .iter()
            .all(|s| !matches!(s.workload, Workload::Synthetic(_)) || s.nodes == 10_000));
        assert_eq!(quick.len(), Topology::ALL.len() * 2 + 3 * 2 + 1 + 4 + 2 + 1);
        assert!(quick.iter().any(|s| s.name() == "dataset_youtube_220k_t4"));
        assert!(quick.iter().any(|s| s.name() == "serving_youtube_220k_t4"));
        assert!(quick.iter().any(|s| s.name() == "churn_youtube_220k_t4"));
        assert!(quick.iter().any(|s| s.name() == "campaign_wiki_7k_t1"));
        assert!(quick.iter().all(|s| !s.bakeoff), "--quick must skip the bake-off cells");
        assert!(
            quick.iter().all(|s| s.name() != "serving_youtube_1m_t4"),
            "--quick must skip the 1M serving cell"
        );
    }

    #[test]
    fn scenario_workloads_are_runnable() {
        // Every topology must survive screening and yield a feasible
        // bench config at small scale (smoke test for the matrix).
        for topology in Topology::ALL {
            let config = SamplingBenchConfig {
                workload: Workload::Synthetic(topology),
                nodes: 400,
                walks: 6_000,
                seed: 3,
                reps: 1,
                ..Default::default()
            };
            let report = run_sampling_bench(config);
            assert!(report.type1 > 0, "{}: empty pool", topology.name());
            assert!(!report.has_relabeled(), "synthetic cells skip the hub layout");
            assert_eq!(
                report.legacy_cost,
                report.arena_cost,
                "{}: pipelines disagree",
                topology.name()
            );
        }
    }

    #[test]
    fn dataset_workload_measures_the_hub_layout() {
        // A scaled-down Wiki cell: the dataset path must load the
        // stand-in, keep the pipelines in agreement, and time the hub-BFS
        // layout (whose pool equality is asserted inside the runner).
        let config = SamplingBenchConfig {
            workload: Workload::Dataset(Dataset::Wiki),
            nodes: 400,
            walks: 6_000,
            seed: 3,
            reps: 1,
            ..Default::default()
        };
        let report = run_sampling_bench(config);
        assert!(report.type1 > 0, "empty pool on the wiki stand-in");
        // On dense dataset workloads the weighted portfolio can legally
        // find a *cheaper* union than the duplicated-family legacy solve
        // (the p-smallest arm takes whole high-multiplicity paths instead
        // of an interleaved prefix of copies), so costs are bounded, not
        // equal, here — the exact equality pipelines keep is pool-level.
        assert!(report.arena_cost <= report.legacy_cost, "weighted solve worse than duplicated");
        assert!(report.arena_cost > 0);
        assert!(report.has_relabeled(), "dataset cells must time the hub layout");
        assert!(report.relabeled_sample_ns > 0 && report.relabeled_solve_ns > 0);
        assert!(report.relabel_speedup() > 0.0);
        // A non-bake-off dataset cell times hub-BFS alone — no layout_ns.
        assert_eq!(report.layouts.len(), 1);
        assert_eq!(report.layouts[0].order, RelabelOrder::HubBfs);
        // Dataset cells run the kernel bake-off: both kernels timed, pool
        // equality asserted inside the runner.
        assert!(report.has_kernels(), "dataset cells must run the kernel bake-off");
        assert_eq!(report.kernel_lanes, 16 * report.config.threads.max(1));
        assert!(report.kernel_speedup() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"relabeled_ns\""));
        assert!(json.contains("\"relabel_speedup\""));
        assert!(json.contains("\"kernel_ns\""));
        assert!(json.contains("\"kernel_speedup\""));
        assert!(!json.contains("\"layout_ns\""), "single-layout cells must not emit layout_ns");
        let value = crate::history::parse_json(&json).unwrap();
        assert_eq!(
            value.get("scenario").and_then(crate::history::JsonValue::as_str),
            Some("dataset_wiki_400_t1")
        );
        assert!(value.path_f64(&["relabeled_ns", "total"]).unwrap() > 0.0);
        assert!(value.path_f64(&["kernel_ns", "scalar"]).unwrap() > 0.0);
        assert!(value.path_f64(&["kernel_ns", "lockstep"]).unwrap() > 0.0);
        assert_eq!(value.path_f64(&["kernel_ns", "lanes"]), Some(16.0));
        assert!(value.path_f64(&["pool", "frontcoded_bytes"]).unwrap() > 0.0);
        assert_eq!(
            value.get("graph").unwrap().get("kind").and_then(crate::history::JsonValue::as_str),
            Some("wiki")
        );
    }

    #[test]
    fn bakeoff_cell_times_every_layout_on_one_pool() {
        // A scaled-down bake-off cell: all three orders must be timed on
        // the same graph (pool equality asserted inside the runner) and
        // the entry must carry a layout_ns column per order.
        let config = SamplingBenchConfig {
            workload: Workload::Dataset(Dataset::Youtube),
            nodes: 600,
            walks: 6_000,
            seed: 3,
            reps: 1,
            bakeoff: true,
            ..Default::default()
        };
        let report = run_sampling_bench(config);
        assert!(report.type1 > 0, "empty pool on the youtube stand-in");
        assert_eq!(report.layouts.len(), RelabelOrder::ALL.len());
        for (timing, order) in report.layouts.iter().zip(RelabelOrder::ALL) {
            assert_eq!(timing.order, order);
            assert!(timing.sample_ns > 0 && timing.solve_ns > 0, "{}", order.name());
        }
        // The hub-BFS column doubles as the back-compatible relabeled_ns.
        assert_eq!(report.layouts[0].sample_ns, report.relabeled_sample_ns);
        assert_eq!(report.layouts[0].solve_ns, report.relabeled_solve_ns);
        let json = report.to_json();
        let value = crate::history::parse_json(&json).unwrap();
        assert_eq!(
            value.get("scenario").and_then(crate::history::JsonValue::as_str),
            Some("dataset_youtube_600_t1")
        );
        for order in RelabelOrder::ALL {
            let total = value.path_f64(&["layout_ns", order.name(), "total"]);
            assert!(total.unwrap() > 0.0, "layout_ns lacks {}", order.name());
        }
        assert_eq!(
            value.path_f64(&["layout_ns", "hub_bfs", "total"]),
            value.path_f64(&["relabeled_ns", "total"]),
        );
        // The entry survives a history round trip (parse → render →
        // parse), which is what the append-only file does on every run.
        let mut history = crate::history::BenchHistory::default();
        history.push(value.clone());
        let reloaded = crate::history::BenchHistory::from_text(&history.to_text()).unwrap();
        assert_eq!(reloaded.entries[0].path_f64(&["layout_ns", "rcm", "total"]), {
            value.path_f64(&["layout_ns", "rcm", "total"])
        });
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let cfg = SamplingBenchConfig {
            nodes: 400,
            walks: 8_000,
            seed: 3,
            reps: 1,
            ..Default::default()
        };
        let report = run_sampling_bench(cfg);
        assert!(report.type1 > 0);
        assert!(report.unique_paths <= report.type1);
        assert_eq!(report.legacy_cost, report.arena_cost, "pipelines disagree on solution cost");
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"speedup\""));
        // The entry parses with the history JSON reader and carries the
        // scenario/profile keys the regression gate groups by.
        let value = crate::history::parse_json(&json).unwrap();
        assert_eq!(
            value.get("scenario").and_then(crate::history::JsonValue::as_str),
            Some("powerlaw_cluster_400_t1")
        );
        assert_eq!(value.get("profile").and_then(crate::history::JsonValue::as_str), Some("full"));
        assert!(value.path_f64(&["arena_ns", "total"]).unwrap() > 0.0);
        // Synthetic cells skip the kernel bake-off but always record the
        // arena-vs-front-coded pool footprint.
        assert!(!report.has_kernels(), "synthetic cells skip the kernel bake-off");
        assert!(!json.contains("\"kernel_ns\""));
        assert!(report.pool_arena_bytes > report.pool_frontcoded_bytes);
        assert!(value.path_f64(&["pool", "arena_bytes"]).unwrap() > 0.0);
    }

    #[test]
    fn scenario_config_applies_profile() {
        let s = find_scenario("erdos_renyi_10k_t4").unwrap();
        let quick = scenario_config(s, BenchProfile::Quick);
        assert_eq!(quick.walks, BenchProfile::Quick.walks());
        assert_eq!(quick.reps, BenchProfile::Quick.reps());
        assert_eq!(quick.threads, 4);
        assert_eq!(quick.profile, "quick");
        assert_eq!(quick.scenario(), s);
        let full = scenario_config(s, BenchProfile::Full);
        assert_eq!(full.walks, 200_000);
        assert_eq!(full.profile, "full");
        let d = find_scenario("dataset_hepth_28k_t1").unwrap();
        assert_eq!(d.workload, Workload::Dataset(Dataset::HepTh));
        assert_eq!(scenario_config(d, BenchProfile::Quick).nodes, 28_000);
    }
}
