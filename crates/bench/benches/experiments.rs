//! Criterion benches regenerating each paper artifact at reduced scale —
//! one bench per table and figure, so `cargo bench` exercises the entire
//! evaluation pipeline end to end.
//!
//! The full-scale regenerators are the `raf-bench` binaries (`cargo run
//! -p raf-bench --bin fig3` etc.); these benches use
//! [`ExperimentConfig::bench_scale`] to stay fast.

use criterion::{criterion_group, criterion_main, Criterion};
use raf_bench::experiments::{fig3, fig45, fig6, table1, table2};
use raf_bench::ExperimentConfig;
use raf_datasets::Dataset;

fn cfg() -> ExperimentConfig {
    ExperimentConfig::bench_scale()
}

fn bench_table1(c: &mut Criterion) {
    let config = cfg();
    c.bench_function("table1_dataset_statistics", |b| b.iter(|| table1::run(&config)));
}

fn bench_fig3(c: &mut Criterion) {
    let config = cfg();
    let mut group = c.benchmark_group("fig3_probability_vs_alpha");
    group.sample_size(10);
    group.bench_function("wiki", |b| b.iter(|| fig3::run(&config, Dataset::Wiki)));
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let config = cfg();
    let mut group = c.benchmark_group("fig4_ratio_vs_highdegree");
    group.sample_size(10);
    group.bench_function("wiki", |b| {
        b.iter(|| fig45::run(&config, Dataset::Wiki, fig45::RatioBaseline::HighDegree))
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let config = cfg();
    let mut group = c.benchmark_group("fig5_ratio_vs_shortestpath");
    group.sample_size(10);
    group.bench_function("wiki", |b| {
        b.iter(|| fig45::run(&config, Dataset::Wiki, fig45::RatioBaseline::ShortestPath))
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let config = cfg();
    let mut group = c.benchmark_group("table2_vmax_vs_raf");
    group.sample_size(10);
    group.bench_function("wiki", |b| b.iter(|| table2::run(&config, Dataset::Wiki)));
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let config = cfg();
    let mut group = c.benchmark_group("fig6_probability_vs_realizations");
    group.sample_size(10);
    group.bench_function("wiki", |b| b.iter(|| fig6::run(&config, Dataset::Wiki)));
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_table2,
    bench_fig6,
);
criterion_main!(benches);
