//! Criterion bench for the arena realization pool: legacy (per-walk
//! `Vec`, mutex + sort, per-set copy) vs arena (`PathPool` + zero-copy
//! weighted cover) pipelines on a 10k-node powerlaw-cluster instance.
//!
//! `raf bench-json` runs the same workloads via
//! [`raf_bench::sampling::run_sampling_bench`] and records the measured
//! speedup in `BENCH_sampling.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use raf_bench::sampling::{
    arena_sample_pool, arena_solve, legacy_sample_pool, legacy_solve, workload, LegacyCsr,
};
use raf_model::sampler::WalkKernel;
use raf_model::FriendingInstance;

const NODES: usize = 10_000;
const WALKS: u64 = 50_000;
const SEED: u64 = 7;
const BETA: f64 = 0.3;

fn bench_sampling_pipeline(c: &mut Criterion) {
    let (csr, s, t) = workload(NODES, SEED);
    let instance = FriendingInstance::new(&csr, s, t).expect("screened pair");
    let n = csr.node_count();
    let legacy_csr = LegacyCsr::from_csr(&csr);
    let mut group = c.benchmark_group("sampling_pipeline");
    group.sample_size(5);
    group.bench_function("legacy_sample", |b| {
        b.iter(|| legacy_sample_pool(&instance, &legacy_csr, WALKS, SEED, 1))
    });
    group.bench_function("arena_sample", |b| {
        b.iter(|| arena_sample_pool(&instance, WALKS, SEED, 1, WalkKernel::Scalar))
    });
    group.bench_function("arena_sample_lockstep", |b| {
        b.iter(|| arena_sample_pool(&instance, WALKS, SEED, 1, WalkKernel::Lockstep))
    });
    let legacy_pool = legacy_sample_pool(&instance, &legacy_csr, WALKS, SEED, 1);
    group.bench_function("legacy_solve", |b| b.iter(|| legacy_solve(n, &legacy_pool, BETA)));
    let arena_pool = arena_sample_pool(&instance, WALKS, SEED, 1, WalkKernel::Scalar);
    group.bench_function("arena_solve", |b| b.iter(|| arena_solve(n, arena_pool.clone(), BETA)));
    group.bench_function("legacy_end_to_end", |b| {
        b.iter(|| {
            let pool = legacy_sample_pool(&instance, &legacy_csr, WALKS, SEED, 1);
            legacy_solve(n, &pool, BETA)
        })
    });
    group.bench_function("arena_end_to_end", |b| {
        b.iter(|| {
            let pool = arena_sample_pool(&instance, WALKS, SEED, 1, WalkKernel::Scalar);
            arena_solve(n, pool, BETA)
        })
    });
    group.finish();
}

fn bench_pool_coverage(c: &mut Criterion) {
    use raf_model::InvitationSet;
    let (csr, s, t) = workload(NODES, SEED);
    let instance = FriendingInstance::new(&csr, s, t).expect("screened pair");
    let pool = arena_sample_pool(&instance, WALKS, SEED, 1, WalkKernel::Scalar);
    let full = InvitationSet::full(csr.node_count());
    c.bench_function("arena_pool_coverage_full", |b| b.iter(|| pool.coverage(&full)));
}

criterion_group!(benches, bench_sampling_pipeline, bench_pool_coverage);
criterion_main!(benches);
