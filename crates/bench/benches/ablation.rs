//! Ablation benches for the design choices called out in DESIGN.md:
//! cover-solver choice, the `V_max` reduction, and realization budgets.
//!
//! These quantify the engineering trade-offs rather than reproduce a
//! paper artifact; results feed the "Further Discussion" analysis in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raf_core::{RafAlgorithm, RafConfig, RealizationBudget, SolverKind};
use raf_datasets::{sample_pairs, synthetic, Dataset, PairSamplerConfig};
use raf_graph::{CsrGraph, NodeId};
use raf_model::FriendingInstance;

fn standin() -> CsrGraph {
    synthetic::generate(Dataset::HepTh, 0.01, 7).unwrap().to_csr()
}

fn instance_on(csr: &CsrGraph) -> FriendingInstance<'_> {
    let pairs = sample_pairs(
        csr,
        &PairSamplerConfig { pairs: 1, screen_samples: 1_000, seed: 5, ..Default::default() },
    );
    let p = pairs.first().expect("screened pair");
    FriendingInstance::new(csr, NodeId::new(p.s as usize), NodeId::new(p.t as usize)).unwrap()
}

/// Ablation 1: cover-solver choice inside the full RAF pipeline.
fn bench_solver_kinds(c: &mut Criterion) {
    let csr = standin();
    let instance = instance_on(&csr);
    let mut group = c.benchmark_group("ablation_solver_kind");
    group.sample_size(10);
    for (name, solver) in
        [("portfolio", SolverKind::Portfolio), ("greedy_only", SolverKind::Greedy)]
    {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let cfg = RafConfig::with_alpha(0.3)
                .seed(9)
                .budget(RealizationBudget::Fixed(10_000))
                .solver(solver);
            let raf = RafAlgorithm::new(cfg);
            b.iter(|| raf.run(&instance).unwrap())
        });
    }
    group.finish();
}

/// Ablation 2: the Sec. III-C `V_max` reduction on/off.
fn bench_vmax_reduction(c: &mut Criterion) {
    let csr = standin();
    let instance = instance_on(&csr);
    let mut group = c.benchmark_group("ablation_vmax_reduction");
    group.sample_size(10);
    for (name, on) in [("with_vmax", true), ("without_vmax", false)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut cfg =
                RafConfig::with_alpha(0.3).seed(9).budget(RealizationBudget::Fixed(10_000));
            cfg.use_vmax_reduction = on;
            let raf = RafAlgorithm::new(cfg);
            b.iter(|| raf.run(&instance).unwrap())
        });
    }
    group.finish();
}

/// Ablation 3: pipeline cost vs realization budget (the practical knob
/// the paper's Sec. IV-E discusses).
fn bench_budget_scaling(c: &mut Criterion) {
    let csr = standin();
    let instance = instance_on(&csr);
    let mut group = c.benchmark_group("ablation_budget_scaling");
    group.sample_size(10);
    for l in [2_000u64, 10_000, 50_000] {
        group.bench_function(BenchmarkId::from_parameter(l), |b| {
            let cfg = RafConfig::with_alpha(0.3).seed(9).budget(RealizationBudget::Fixed(l));
            let raf = RafAlgorithm::new(cfg);
            b.iter(|| raf.run(&instance).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver_kinds, bench_vmax_reduction, bench_budget_scaling);
criterion_main!(benches);
