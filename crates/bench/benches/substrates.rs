//! Criterion micro-benchmarks for the substrates: reverse-walk sampling,
//! forward process, full realizations, cover solvers, and `V_max`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raf_core::{vmax_exact, vmax_loose};
use raf_cover::{ChlamtacPortfolio, CoverInstance, GreedyMarginal, MpuSolver, SmallestSets};
use raf_datasets::{sample_pairs, synthetic, Dataset, PairSamplerConfig};
use raf_graph::{CsrGraph, NodeId};
use raf_model::process::run_process;
use raf_model::realization::Realization;
use raf_model::reverse::sample_target_path;
use raf_model::sampler::SampleRequest;
use raf_model::{FriendingInstance, InvitationSet};
use rand::SeedableRng;

fn standin(dataset: Dataset, scale: f64) -> CsrGraph {
    synthetic::generate(dataset, scale, 7).unwrap().to_csr()
}

fn screened_instance(csr: &CsrGraph) -> FriendingInstance<'_> {
    let pairs = sample_pairs(
        csr,
        &PairSamplerConfig { pairs: 1, screen_samples: 1_000, seed: 5, ..Default::default() },
    );
    let p = pairs.first().expect("screened pair");
    FriendingInstance::new(csr, NodeId::new(p.s as usize), NodeId::new(p.t as usize)).unwrap()
}

fn bench_reverse_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("reverse_walk");
    for (name, dataset, scale) in [("wiki", Dataset::Wiki, 0.02), ("hepth", Dataset::HepTh, 0.01)] {
        let csr = standin(dataset, scale);
        let instance = screened_instance(&csr);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| sample_target_path(&instance, &mut rng))
        });
    }
    group.finish();
}

fn bench_forward_process(c: &mut Criterion) {
    let csr = standin(Dataset::Wiki, 0.02);
    let instance = screened_instance(&csr);
    let all = InvitationSet::full(csr.node_count());
    c.bench_function("forward_process_full_invitations", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        b.iter(|| run_process(&instance, &all, &mut rng))
    });
}

fn bench_full_realization(c: &mut Criterion) {
    let csr = standin(Dataset::Wiki, 0.02);
    c.bench_function("full_realization_sample", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| Realization::sample(&csr, &mut rng))
    });
}

fn bench_pool(c: &mut Criterion) {
    let csr = standin(Dataset::HepTh, 0.01);
    let instance = screened_instance(&csr);
    c.bench_function("pool_10k_walks", |b| {
        b.iter(|| SampleRequest::new(10_000).seed(4).run(&instance))
    });
}

fn bench_cover_solvers(c: &mut Criterion) {
    // A realistic RAF-shaped instance: overlapping path sets.
    let csr = standin(Dataset::Wiki, 0.02);
    let instance = screened_instance(&csr);
    let pool = SampleRequest::new(30_000).seed(9).run(&instance);
    let m = pool.type1_count().max(1);
    let inst = CoverInstance::from_path_pool(csr.node_count(), pool).unwrap();
    let p = (m * 3 / 10).max(1);
    let mut group = c.benchmark_group("cover_solvers");
    group.bench_function("greedy", |b| b.iter(|| GreedyMarginal::new().solve(&inst, p).unwrap()));
    group.bench_function("smallest", |b| b.iter(|| SmallestSets::new().solve(&inst, p).unwrap()));
    group.bench_function("portfolio", |b| {
        b.iter(|| ChlamtacPortfolio::new().solve(&inst, p).unwrap())
    });
    group.finish();
}

fn bench_vmax(c: &mut Criterion) {
    let csr = standin(Dataset::HepTh, 0.02);
    let instance = screened_instance(&csr);
    let mut group = c.benchmark_group("vmax");
    group.bench_function("exact_block_cut_tree", |b| b.iter(|| vmax_exact(&instance)));
    group.bench_function("loose_reachability", |b| b.iter(|| vmax_loose(&instance)));
    group.finish();
}

criterion_group!(
    benches,
    bench_reverse_sampling,
    bench_forward_process,
    bench_full_realization,
    bench_pool,
    bench_cover_solvers,
    bench_vmax,
);
criterion_main!(benches);
