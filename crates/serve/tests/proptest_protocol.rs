//! Fuzz hardening for the `raf serve` line protocol: parsing is *total*.
//!
//! Any byte sequence a client can write — raw binary, NUL bytes, absurd
//! column counts, kilobyte-long "numbers", ids past the 32-bit node id
//! space — must produce either a parsed request or a deterministic,
//! bounded, single-line error string. Never a panic (a panic would kill
//! an interactive serve session before the robustness layer can even
//! answer `err`), never an unbounded echo of hostile input, and never a
//! silently truncated id (the historical bug: ids over `u32::MAX`
//! reached `NodeId::new`, which debug-asserts in debug builds and
//! wraps in release — so id 2^32 aliased node 0, cache key included).

use proptest::prelude::*;
use raf_serve::protocol::{parse_request, parse_request_bytes};

// Hostile-ish tokens: digit runs of absurd length, signs, NULs, UTF-8
// fragments, and plain valid numbers, so generated lines sit on both
// sides of every parse branch.
prop_compose! {
    fn token()(kind in 0u8..8, n in 1usize..40, digit in 0u8..10) -> Vec<u8> {
        match kind {
            0 => vec![b'0' + digit; n],                  // short digit run
            1 => vec![b'0' + digit; 1_024 + n],          // kilobyte number
            2 => vec![0xFF; n],                          // invalid UTF-8
            3 => vec![0x00; n],                          // NULs
            4 => format!("-{}", u64::from(digit)).into_bytes(),
            5 => format!("{}.{}", digit, digit).into_bytes(),
            6 => format!("{}", u64::from(digit) << 60).into_bytes(),
            _ => format!("{}", u32::from(digit)).into_bytes(),
        }
    }
}

prop_compose! {
    fn request_line()(tokens in proptest::collection::vec(token(), 0..8)) -> Vec<u8> {
        tokens.join(&b' ')
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw bytes: parsing never panics, and the outcome is a pure
    /// function of the line (same bytes, same result — the protocol
    /// promises deterministic errors, not just *some* error).
    #[test]
    fn arbitrary_bytes_parse_totally(line in proptest::collection::vec(0u8..=255, 0..300)) {
        let first = parse_request_bytes(&line, 1_000);
        let second = parse_request_bytes(&line, 1_000);
        prop_assert_eq!(&first, &second);
        if let Err(message) = first {
            prop_assert!(message.len() <= 200, "unbounded error ({} bytes)", message.len());
            prop_assert!(!message.contains('\n'), "error must stay one response line");
        }
    }

    /// Structured hostile lines (whitespace-joined hostile tokens) hit
    /// the field-count and per-field branches without panicking, and
    /// every accepted request carries in-range ids — the truncation
    /// guard, fuzzed.
    #[test]
    fn hostile_tokens_never_truncate_ids(line in request_line()) {
        match parse_request_bytes(&line, 1_000) {
            Ok(Some(query)) => {
                prop_assert!(query.s.index() <= u32::MAX as usize);
                prop_assert!(query.t.index() <= u32::MAX as usize);
            }
            Ok(None) => prop_assert!(line.is_empty() || line[0] == b'#'),
            Err(message) => {
                prop_assert!(message.len() <= 200, "unbounded error ({} bytes)", message.len());
                prop_assert!(!message.contains('\n'));
            }
        }
    }

    /// Well-formed requests round-trip exactly as long as the ids fit
    /// the 32-bit space; past it, the parse *must* fail (ids used to
    /// truncate into the cache key space there).
    #[test]
    fn id_boundary_is_exact(s in 0u64..1 << 40, t in 0u64..1 << 40, budget in 1u64..1 << 48) {
        let line = format!("{s} {t} 0.5 {budget}");
        let fits = s <= u64::from(u32::MAX) && t <= u64::from(u32::MAX);
        match parse_request(&line, 7) {
            Ok(Some(query)) => {
                prop_assert!(fits);
                prop_assert_eq!(query.s.index() as u64, s);
                prop_assert_eq!(query.t.index() as u64, t);
                prop_assert_eq!(query.budget, budget);
            }
            Ok(None) => prop_assert!(false, "non-blank line skipped"),
            Err(message) => {
                prop_assert!(!fits, "in-range request rejected: {}", message);
                prop_assert!(message.contains("overflows the 32-bit id space"), "{}", message);
            }
        }
    }
}
