//! Per-query resource governance: deterministic work budgets, optional
//! wall-clock deadlines, and admission control.
//!
//! The serving layer's robustness contract has two halves. **Deadlines**
//! bound how much work an *admitted* query may spend: the walk-step
//! budget of [`DeadlinePolicy`] is threaded into the sampler as a
//! cancellation token (checked per walk batch, see
//! [`raf_model::sampler::SampleControl`]) and a query that exhausts it
//! degrades gracefully — the answer comes from the partial pool, marked
//! `degraded`, bit-identical for a fixed `(seed, budget)`. **Admission
//! control** bounds what enters at all: [`AdmissionPolicy`] caps the
//! work a single query may request and the work a batch window may hold
//! in flight ([`AdmissionLedger`]); queries over either limit are shed
//! with [`ShedReason`] (the `err overloaded` protocol line) instead of
//! being allowed to stall the session.

use std::fmt;

/// Per-query deadline knobs of a serving session. The default is
/// unlimited on both axes, which keeps the session bit-identical to a
/// deadline-free one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadlinePolicy {
    /// Deterministic per-query work budget in walk-steps (node advances
    /// plus terminating draws). Exhaustion degrades the answer; it never
    /// fails the query. `None` = unlimited.
    pub work_budget: Option<u64>,
    /// Wall-clock cap per query in milliseconds, layered on top of the
    /// step budget for latency protection. Truncation under this cap is
    /// *not* deterministic (it depends on machine speed); reproducible
    /// tests use `work_budget` alone. `None` = no time cap.
    pub wall_clock_ms: Option<u64>,
}

impl DeadlinePolicy {
    /// No limits: queries always sample their full walk count.
    pub const UNLIMITED: DeadlinePolicy = DeadlinePolicy { work_budget: None, wall_clock_ms: None };

    /// Whether this policy can never truncate a query.
    pub fn is_unlimited(&self) -> bool {
        self.work_budget.is_none() && self.wall_clock_ms.is_none()
    }

    /// The wall-clock deadline for a query starting now, if any.
    pub(crate) fn deadline_from_now(&self) -> Option<std::time::Instant> {
        self.wall_clock_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms))
    }
}

/// Admission limits of a serving session. The default admits
/// everything, which keeps the session bit-identical to an
/// admission-free one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionPolicy {
    /// Per-query cap on *effective* walks (the budget after the walk
    /// ceiling clamp). A query over this cap is shed with
    /// [`ShedReason::QueryTooLarge`]. `None` = no per-query cap.
    pub max_query_walks: Option<u64>,
    /// Ceiling on walks reserved across an in-flight admission window
    /// (see [`AdmissionLedger`]). `None` = unbounded window.
    pub max_inflight_walks: Option<u64>,
}

impl AdmissionPolicy {
    /// Admit everything.
    pub const OPEN: AdmissionPolicy =
        AdmissionPolicy { max_query_walks: None, max_inflight_walks: None };
}

/// Why admission control shed a query — the payload of
/// [`crate::ServeError::Overloaded`]. Every variant renders with a
/// retry hint: shedding is back-pressure, not failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The query's effective walk count exceeds the per-query cap.
    /// Retrying without lowering the budget can never succeed.
    QueryTooLarge {
        /// Effective walks the query asked for.
        walks: u64,
        /// The per-query cap it exceeded.
        cap: u64,
    },
    /// Admitting the query would push the in-flight window over its
    /// walk ceiling. Retrying after the window drains will succeed.
    SessionSaturated {
        /// Walks currently reserved by admitted queries.
        inflight: u64,
        /// Queries currently holding those reservations (the retry
        /// hint: try again after this many completions).
        queries: u64,
        /// The window's walk ceiling.
        cap: u64,
    },
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::QueryTooLarge { walks, cap } => {
                write!(
                    f,
                    "query needs {walks} walks, per-query cap is {cap}; retry with budget <= {cap}"
                )
            }
            ShedReason::SessionSaturated { inflight, queries, cap } => {
                write!(
                    f,
                    "{inflight} walks in flight across {queries} queries, window cap is {cap}; \
                     retry after {queries} completions"
                )
            }
        }
    }
}

/// The in-flight work ledger behind batch-window admission: reservations
/// are made as queries are admitted and released as they complete, so
/// the window's outstanding work never exceeds
/// [`AdmissionPolicy::max_inflight_walks`]. Purely arithmetic — no
/// clocks, no randomness — so a batch driver replaying the same request
/// stream sheds the same queries every run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLedger {
    inflight_walks: u64,
    inflight_queries: u64,
}

impl AdmissionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks currently reserved.
    pub fn inflight_walks(&self) -> u64 {
        self.inflight_walks
    }

    /// Queries currently holding reservations.
    pub fn inflight_queries(&self) -> u64 {
        self.inflight_queries
    }

    /// Tries to reserve `walks` for one query under `policy`. On success
    /// the reservation is held until [`release`](Self::release).
    ///
    /// # Errors
    ///
    /// The [`ShedReason`] to report to the client. The ledger is
    /// unchanged on error.
    pub fn try_reserve(&mut self, policy: &AdmissionPolicy, walks: u64) -> Result<(), ShedReason> {
        if let Some(cap) = policy.max_query_walks {
            if walks > cap {
                return Err(ShedReason::QueryTooLarge { walks, cap });
            }
        }
        if let Some(cap) = policy.max_inflight_walks {
            let total = self.inflight_walks.saturating_add(walks);
            // A window must always admit at least one query, or an
            // over-cap first query would deadlock the whole batch.
            if total > cap && self.inflight_queries > 0 {
                return Err(ShedReason::SessionSaturated {
                    inflight: self.inflight_walks,
                    queries: self.inflight_queries,
                    cap,
                });
            }
        }
        self.inflight_walks = self.inflight_walks.saturating_add(walks);
        self.inflight_queries += 1;
        Ok(())
    }

    /// Releases a reservation made by [`try_reserve`](Self::try_reserve).
    pub fn release(&mut self, walks: u64) {
        self.inflight_walks = self.inflight_walks.saturating_sub(walks);
        self.inflight_queries = self.inflight_queries.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_policies_admit_everything() {
        assert!(DeadlinePolicy::default().is_unlimited());
        assert_eq!(DeadlinePolicy::default(), DeadlinePolicy::UNLIMITED);
        let mut ledger = AdmissionLedger::new();
        for _ in 0..100 {
            ledger.try_reserve(&AdmissionPolicy::OPEN, u64::MAX / 200).unwrap();
        }
        assert_eq!(ledger.inflight_queries(), 100);
    }

    #[test]
    fn per_query_cap_sheds_oversized_queries() {
        let policy = AdmissionPolicy { max_query_walks: Some(1_000), max_inflight_walks: None };
        let mut ledger = AdmissionLedger::new();
        assert_eq!(ledger.try_reserve(&policy, 1_000), Ok(()));
        let shed = ledger.try_reserve(&policy, 1_001).unwrap_err();
        assert_eq!(shed, ShedReason::QueryTooLarge { walks: 1_001, cap: 1_000 });
        // The failed reservation left the ledger untouched.
        assert_eq!(ledger.inflight_queries(), 1);
        assert_eq!(ledger.inflight_walks(), 1_000);
    }

    #[test]
    fn window_cap_sheds_then_admits_after_release() {
        let policy = AdmissionPolicy { max_query_walks: None, max_inflight_walks: Some(5_000) };
        let mut ledger = AdmissionLedger::new();
        ledger.try_reserve(&policy, 3_000).unwrap();
        ledger.try_reserve(&policy, 2_000).unwrap();
        let shed = ledger.try_reserve(&policy, 1).unwrap_err();
        assert!(matches!(shed, ShedReason::SessionSaturated { inflight: 5_000, queries: 2, .. }));
        ledger.release(3_000);
        ledger.try_reserve(&policy, 1).unwrap();
        assert_eq!(ledger.inflight_walks(), 2_001);
        assert_eq!(ledger.inflight_queries(), 2);
    }

    #[test]
    fn first_query_is_always_admitted() {
        // An over-cap first query must not deadlock an empty window.
        let policy = AdmissionPolicy { max_query_walks: None, max_inflight_walks: Some(100) };
        let mut ledger = AdmissionLedger::new();
        assert_eq!(ledger.try_reserve(&policy, 10_000), Ok(()));
        ledger.release(10_000);
        assert_eq!(ledger, AdmissionLedger::new());
    }

    #[test]
    fn shed_reasons_carry_retry_hints() {
        let too_large = ShedReason::QueryTooLarge { walks: 9, cap: 5 }.to_string();
        assert!(too_large.contains("retry with budget <= 5"), "{too_large}");
        let saturated =
            ShedReason::SessionSaturated { inflight: 10, queries: 3, cap: 12 }.to_string();
        assert!(saturated.contains("retry after 3 completions"), "{saturated}");
    }
}
