//! The resident-graph session context and its query pipeline.

use crate::cache::{CacheStats, CachedPool, PoolCache, PoolKey};
use raf_core::{CoreError, ParameterSet};
use raf_cover::{ChlamtacPortfolio, CoverError, CoverInstance};
use raf_graph::{CsrGraph, NodeId, Relabeling};
use raf_model::sampler::{sample_pool_parallel, PathPool};
use raf_model::{FriendingInstance, InvitationSet, ModelError};
use std::fmt;
use std::sync::Arc;

/// Context-wide serving knobs. Together with the resident graph these
/// fully determine every answer: the same `(config, query)` always
/// yields the same invitation set, cached or not.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Walk-count ceiling per pool: a query's realization budget is
    /// clamped to this before it becomes part of the pool key.
    pub walks: u64,
    /// Slack `ε` of the parameter system (eq. 17); queries must use
    /// `α ∈ (ε, 1]`.
    pub epsilon: f64,
    /// Master seed; per-pair pool seeds are derived from it (and from
    /// nothing else but the pair), so answers never depend on query
    /// arrival order.
    pub seed: u64,
    /// Sampler threads.
    pub threads: usize,
    /// Byte budget of the pool cache.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { walks: 100_000, epsilon: 0.01, seed: 1, threads: 1, cache_bytes: 256 << 20 }
    }
}

/// One friending query against the resident graph: find a small
/// invitation set for `s` to befriend `t` reaching `α · p_max`, sampling
/// at most `budget` realizations (clamped to the context's walk
/// ceiling). Ids are original-space even on relabeled snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// The initiator.
    pub s: NodeId,
    /// The target.
    pub t: NodeId,
    /// Approximation target `α ∈ (ε, 1]`.
    pub alpha: f64,
    /// Realization budget (walk count before clamping).
    pub budget: u64,
}

/// The answer to one [`Query`], with the intermediate quantities the
/// paper's analysis talks about plus the cache outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The invitation set `I*` (original-space ids).
    pub invitations: InvitationSet,
    /// The solved parameter set `(ε0, ε1, β)` for this query's `α`.
    pub parameters: ParameterSet,
    /// The pool's `p_max` estimate `|B¹_l| / l`.
    pub pmax_estimate: f64,
    /// Effective walks the pool was sampled with (the budget after the
    /// [`ServeConfig::walks`] clamp).
    pub walks: u64,
    /// `|B¹_l|`: type-1 realizations in the pool.
    pub type1_count: usize,
    /// The cover requirement `p = ⌈β·|B¹_l|⌉`.
    pub cover_p: usize,
    /// Sets actually covered by `I*` (≥ `cover_p`).
    pub covered: usize,
    /// Whether the pool came from the cache (`false` = freshly sampled).
    pub cache_hit: bool,
}

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A query failed structural validation before touching the graph.
    InvalidQuery(String),
    /// Instance construction rejected the pair.
    Instance(ModelError),
    /// The parameter system rejected `(α, ε)`.
    Parameters(CoreError),
    /// The cover solve failed.
    Solver(CoverError),
    /// The pool observed no type-1 realization: `t` is unreachable from
    /// `N(s)` within the sampled walks.
    TargetUnreachable {
        /// Walks sampled before giving up.
        samples: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidQuery(message) => write!(f, "invalid query: {message}"),
            ServeError::Instance(e) => write!(f, "invalid pair: {e}"),
            ServeError::Parameters(e) => write!(f, "parameter solve failed: {e}"),
            ServeError::Solver(e) => write!(f, "cover solve failed: {e}"),
            ServeError::TargetUnreachable { samples } => {
                write!(f, "target unreachable within {samples} sampled walks")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Instance(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Parameters(e)
    }
}

impl From<CoverError> for ServeError {
    fn from(e: CoverError) -> Self {
        ServeError::Solver(e)
    }
}

/// A serving session: one resident [`CsrGraph`] snapshot (optionally
/// relabeled — queries and answers stay in original ids either way), a
/// [`PoolCache`] of sampled pools, and the configuration that makes
/// every answer a pure function of the query.
#[derive(Debug)]
pub struct SessionContext<'g> {
    csr: &'g CsrGraph,
    relabeling: Option<Arc<Relabeling>>,
    config: ServeConfig,
    cache: PoolCache,
}

impl<'g> SessionContext<'g> {
    /// A context over a plain-layout snapshot.
    pub fn new(csr: &'g CsrGraph, config: ServeConfig) -> Self {
        let cache = PoolCache::new(config.cache_bytes);
        SessionContext { csr, relabeling: None, config, cache }
    }

    /// A context over a relabeled snapshot: queries take original-space
    /// ids and the relabeling maps them into (and pool contents out of)
    /// the snapshot's id space, so answers are bit-identical to a
    /// plain-layout context over the same graph.
    pub fn with_relabeling(
        csr: &'g CsrGraph,
        relabeling: Arc<Relabeling>,
        config: ServeConfig,
    ) -> Self {
        let cache = PoolCache::new(config.cache_bytes);
        SessionContext { csr, relabeling: Some(relabeling), config, cache }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of pools currently resident.
    pub fn cached_pools(&self) -> usize {
        self.cache.len()
    }

    /// Bytes currently charged by resident pools (and their cover
    /// instances) against [`ServeConfig::cache_bytes`].
    pub fn resident_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// The pool key a query resolves to: the pair plus the effective
    /// walk count (budget clamped to the context ceiling). Queries that
    /// differ only in `α` — or in budgets that clamp to the same walk
    /// count — share a key, which is the reuse the cache exploits.
    pub fn key_for(&self, query: &Query) -> Result<PoolKey, ServeError> {
        if query.budget == 0 {
            return Err(ServeError::InvalidQuery("budget must be positive".into()));
        }
        if query.s == query.t {
            return Err(ServeError::InvalidQuery("source and target coincide".into()));
        }
        Ok(PoolKey {
            s: query.s.index() as u32,
            t: query.t.index() as u32,
            walks: query.budget.min(self.config.walks),
        })
    }

    /// The per-key pool seed: a pure mix of the master seed and the
    /// pair, independent of arrival order and of the walk count (the
    /// walk count differentiates keys, not seeds).
    fn pool_seed(&self, key: &PoolKey) -> u64 {
        self.config.seed ^ splitmix64((u64::from(key.s) << 32) | u64::from(key.t))
    }

    fn instance(&self, s: NodeId, t: NodeId) -> Result<FriendingInstance<'g>, ServeError> {
        Ok(match &self.relabeling {
            None => FriendingInstance::new(self.csr, s, t)?,
            Some(r) => FriendingInstance::relabeled(self.csr, s, t, Arc::clone(r))?,
        })
    }

    /// Fetches (or samples) the entry for a key, reporting whether it was
    /// a hit.
    fn entry(&mut self, query: &Query) -> Result<(CachedPool, bool), ServeError> {
        let key = self.key_for(query)?;
        if let Some(entry) = self.cache.get(&key) {
            return Ok((entry, true));
        }
        let instance = self.instance(query.s, query.t)?;
        let pool =
            sample_pool_parallel(&instance, key.walks, self.pool_seed(&key), self.config.threads);
        let cover = CoverInstance::from_path_pool(self.csr.node_count(), pool.clone())?;
        let entry = CachedPool { pool: Arc::new(pool), cover: Arc::new(cover) };
        self.cache.insert(key, entry.clone());
        Ok((entry, false))
    }

    /// The cached realization pool for a pair at a walk budget — the
    /// building block `raf experiment` shares evaluation pools through.
    /// Counts a hit or miss like any query.
    ///
    /// # Errors
    ///
    /// See [`ServeError`]; `α` plays no role here.
    pub fn pool(&mut self, s: NodeId, t: NodeId, budget: u64) -> Result<Arc<PathPool>, ServeError> {
        let probe = Query { s, t, alpha: 1.0, budget };
        let (entry, _) = self.entry(&probe)?;
        Ok(entry.pool)
    }

    /// Answers one query: pool from the cache (sampling only on a true
    /// key miss), then the `α`-dependent cover phase on the resident
    /// cover instance.
    ///
    /// # Errors
    ///
    /// See [`ServeError`].
    pub fn query(&mut self, query: &Query) -> Result<QueryAnswer, ServeError> {
        let (entry, cache_hit) = self.entry(query)?;
        let parameters =
            ParameterSet::solve(query.alpha, self.config.epsilon, self.csr.node_count())?;
        let b1 = entry.pool.type1_count();
        if b1 == 0 {
            return Err(ServeError::TargetUnreachable { samples: entry.pool.total_samples() });
        }
        let p = raf_cover::cover_requirement(parameters.beta, b1);
        let msc = raf_cover::solve_msc(&ChlamtacPortfolio::new(), &entry.cover, p)?;
        let mut invitations = InvitationSet::empty(self.csr.node_count());
        for &e in &msc.elements {
            invitations.insert(NodeId::new(e as usize));
        }
        Ok(QueryAnswer {
            invitations,
            parameters,
            pmax_estimate: entry.pool.pmax_estimate(),
            walks: entry.pool.total_samples(),
            type1_count: b1,
            cover_p: p,
            covered: msc.covered_weight,
            cache_hit,
        })
    }

    /// Answers a batch in order, one result per query (errors don't stop
    /// the batch — a service keeps serving).
    pub fn query_batch(&mut self, queries: &[Query]) -> Vec<Result<QueryAnswer, ServeError>> {
        queries.iter().map(|q| self.query(q)).collect()
    }
}

/// The cold reference: a fresh single-query context over the same graph
/// and configuration. A cache-hit answer from a long-lived context is
/// bit-identical to this (the equivalence the serving layer is built
/// on, property-tested in `tests/serving_equivalence.rs`).
///
/// # Errors
///
/// See [`ServeError`].
pub fn one_shot(
    csr: &CsrGraph,
    config: ServeConfig,
    query: &Query,
) -> Result<QueryAnswer, ServeError> {
    SessionContext::new(csr, config).query(query)
}

/// SplitMix64 finalizer — the same per-seed decorrelation the sampler
/// uses for its worker threads, here decorrelating per-pair pool seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raf_graph::{GraphBuilder, WeightScheme};

    fn routes_csr() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 1), (0, 6), (6, 7), (7, 1)])
            .unwrap();
        b.build(WeightScheme::UniformByDegree).unwrap().to_csr()
    }

    fn q(alpha: f64, budget: u64) -> Query {
        Query { s: NodeId::new(0), t: NodeId::new(1), alpha, budget }
    }

    #[test]
    fn warm_answer_matches_cold_one_shot() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 20_000, seed: 9, ..Default::default() };
        let cold = one_shot(&csr, cfg.clone(), &q(0.4, 20_000)).unwrap();
        assert!(!cold.cache_hit);
        let mut ctx = SessionContext::new(&csr, cfg);
        // Prime with a *different* alpha, then hit with the tested one.
        let primed = ctx.query(&q(0.7, 20_000)).unwrap();
        assert!(!primed.cache_hit);
        let warm = ctx.query(&q(0.4, 20_000)).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.invitations, cold.invitations);
        assert_eq!(warm.type1_count, cold.type1_count);
        assert_eq!(warm.cover_p, cold.cover_p);
        assert_eq!(warm.pmax_estimate, cold.pmax_estimate);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn alpha_and_clamped_budget_share_a_key() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 3, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg);
        let a = ctx.key_for(&q(0.2, 10_000)).unwrap();
        // Bigger budget clamps to the context ceiling: same key.
        let b = ctx.key_for(&q(0.9, 1_000_000)).unwrap();
        assert_eq!(a, b);
        // A genuinely smaller budget is a different pool.
        let c = ctx.key_for(&q(0.2, 5_000)).unwrap();
        assert_ne!(a, c);
        ctx.query(&q(0.2, 10_000)).unwrap();
        let hit = ctx.query(&q(0.9, 1_000_000)).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.walks, 10_000);
        let miss = ctx.query(&q(0.2, 5_000)).unwrap();
        assert!(!miss.cache_hit);
        assert_eq!(miss.walks, 5_000);
    }

    #[test]
    fn source_is_part_of_the_key() {
        // Pools depend on the source's seed frontier N(s), so two sources
        // aiming at one target must not share a pool.
        let csr = routes_csr();
        let ctx = SessionContext::new(&csr, ServeConfig::default());
        let k0 = ctx.key_for(&q(0.3, 1_000)).unwrap();
        let k2 = ctx
            .key_for(&Query { s: NodeId::new(2), t: NodeId::new(1), alpha: 0.3, budget: 1_000 })
            .unwrap();
        assert_ne!(k0, k2);
    }

    #[test]
    fn answers_are_arrival_order_independent() {
        // Pool seeds derive from (master seed, pair) only, so a pair's
        // answer is the same whether it was queried first or after other
        // pairs populated the cache.
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 8_000, seed: 21, ..Default::default() };
        let mut fresh = SessionContext::new(&csr, cfg.clone());
        let direct = fresh.query(&q(0.5, 8_000)).unwrap();
        let mut busy = SessionContext::new(&csr, cfg);
        busy.query(&Query { s: NodeId::new(2), t: NodeId::new(1), alpha: 0.3, budget: 8_000 })
            .unwrap();
        busy.query(&Query { s: NodeId::new(0), t: NodeId::new(5), alpha: 0.3, budget: 8_000 })
            .unwrap();
        let after = busy.query(&q(0.5, 8_000)).unwrap();
        assert_eq!(direct.invitations, after.invitations);
        assert_eq!(direct.pmax_estimate, after.pmax_estimate);
    }

    #[test]
    fn relabeled_context_is_bit_identical_to_plain() {
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1), (2, 4), (3, 5), (5, 1)]).unwrap();
        let social = b.build(WeightScheme::UniformByDegree).unwrap();
        let plain_csr = social.to_csr();
        let r = Arc::new(Relabeling::hub_bfs(&social));
        assert!(!r.is_identity());
        let relab_csr = social.to_csr_relabeled(&r);
        let cfg = ServeConfig { walks: 20_000, seed: 5, ..Default::default() };
        let mut plain = SessionContext::new(&plain_csr, cfg.clone());
        let mut relab = SessionContext::with_relabeling(&relab_csr, r, cfg);
        for alpha in [0.3, 0.6] {
            let a = plain.query(&q(alpha, 20_000)).unwrap();
            let b = relab.query(&q(alpha, 20_000)).unwrap();
            assert_eq!(a.invitations, b.invitations, "alpha={alpha}");
            assert_eq!(a.pmax_estimate, b.pmax_estimate);
            assert_eq!(a.covered, b.covered);
        }
        // Both contexts saw one miss then one hit.
        assert_eq!(plain.stats(), relab.stats());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let csr = routes_csr();
        let mut ctx = SessionContext::new(&csr, ServeConfig::default());
        assert!(matches!(ctx.query(&q(0.3, 0)), Err(ServeError::InvalidQuery(_))));
        let same = Query { s: NodeId::new(1), t: NodeId::new(1), alpha: 0.3, budget: 100 };
        assert!(matches!(ctx.query(&same), Err(ServeError::InvalidQuery(_))));
        // alpha must exceed epsilon: the parameter system rejects it.
        assert!(matches!(ctx.query(&q(0.001, 100)), Err(ServeError::Parameters(_))));
        // Unreachable target: a node with no inbound route from N(s).
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let island = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let mut ctx = SessionContext::new(&island, ServeConfig::default());
        let across = Query { s: NodeId::new(0), t: NodeId::new(3), alpha: 0.3, budget: 500 };
        assert!(matches!(ctx.query(&across), Err(ServeError::TargetUnreachable { .. })));
    }

    #[test]
    fn batch_keeps_serving_past_errors() {
        let csr = routes_csr();
        let mut ctx = SessionContext::new(&csr, ServeConfig::default());
        let batch = [q(0.4, 5_000), q(0.4, 0), q(0.6, 5_000), q(0.2, 5_000)];
        let answers = ctx.query_batch(&batch);
        assert_eq!(answers.len(), 4);
        assert!(answers[0].is_ok() && answers[1].is_err());
        assert!(answers[2].as_ref().unwrap().cache_hit);
        assert!(answers[3].as_ref().unwrap().cache_hit);
        let stats = ctx.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ServeError::InvalidQuery("budget must be positive".into());
        assert!(e.to_string().contains("budget"));
        assert!(ServeError::TargetUnreachable { samples: 42 }.to_string().contains("42"));
    }
}
