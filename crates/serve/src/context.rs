//! The resident-graph session context and its query pipeline.

use crate::cache::{CacheStats, CachedPool, PoolCache, PoolKey};
use crate::deadline::{AdmissionPolicy, DeadlinePolicy, ShedReason};
use crate::fault::{FaultKind, FaultPlan};
use raf_core::{CoreError, ParameterSet};
use raf_cover::{ChlamtacPortfolio, CoverError, CoverInstance};
use raf_graph::{CsrGraph, EdgeDelta, GraphError, NodeId, Relabeling, SocialGraph, WeightScheme};
use raf_model::sampler::{
    pair_seed, repair_pool, PathPool, PoolRepair, SampleControl, SampleRequest,
};
use raf_model::walk_index::EdgeWalkIndex;
use raf_model::{FriendingInstance, InvitationSet, ModelError};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Context-wide serving knobs. Together with the resident graph these
/// fully determine every answer: the same `(config, query)` always
/// yields the same invitation set, cached or not — including degraded
/// answers, as long as truncation comes from the deterministic
/// [`DeadlinePolicy::work_budget`] (a wall-clock cap trades that
/// reproducibility for latency protection).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Walk-count ceiling per pool: a query's realization budget is
    /// clamped to this before it becomes part of the pool key.
    pub walks: u64,
    /// Slack `ε` of the parameter system (eq. 17); queries must use
    /// `α ∈ (ε, 1]`.
    pub epsilon: f64,
    /// Master seed; per-pair pool seeds are derived from it (and from
    /// nothing else but the pair), so answers never depend on query
    /// arrival order.
    pub seed: u64,
    /// Sampler threads.
    pub threads: usize,
    /// Byte budget of the pool cache.
    pub cache_bytes: usize,
    /// Per-query deadlines (work budget in walk-steps, optional
    /// wall-clock cap). Exhaustion degrades the answer — see
    /// [`QueryAnswer::degraded`] — it never fails the query.
    pub deadline: DeadlinePolicy,
    /// Admission limits; queries over them are shed with
    /// [`ServeError::Overloaded`] instead of being allowed to stall the
    /// session.
    pub admission: AdmissionPolicy,
    /// Store cached pools front-coded (prefix-interned) instead of as
    /// flat arenas: entries charge fewer bytes against
    /// [`cache_bytes`](Self::cache_bytes) and decode to a bit-identical
    /// arena on every hit — answers are unchanged, hits cost a decode.
    pub front_coded_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            walks: 100_000,
            epsilon: 0.01,
            seed: 1,
            threads: 1,
            cache_bytes: 256 << 20,
            deadline: DeadlinePolicy::UNLIMITED,
            admission: AdmissionPolicy::OPEN,
            front_coded_cache: false,
        }
    }
}

/// One friending query against the resident graph: find a small
/// invitation set for `s` to befriend `t` reaching `α · p_max`, sampling
/// at most `budget` realizations (clamped to the context's walk
/// ceiling). Ids are original-space even on relabeled snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// The initiator.
    pub s: NodeId,
    /// The target.
    pub t: NodeId,
    /// Approximation target `α ∈ (ε, 1]`.
    pub alpha: f64,
    /// Realization budget (walk count before clamping).
    pub budget: u64,
}

/// One multi-target campaign request against the resident graph: a
/// source, `k` distinct targets, and one shared invitation budget,
/// allocated greedily across the targets' pools by
/// [`raf_cover::allocate_budget`]. Each target's pool resolves through
/// the same [`PoolCache`] keys a single-target [`Query`] for that pair
/// would use (walk count = the context ceiling), so campaigns warm the
/// cache for later single queries and vice versa.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignQuery {
    /// The campaigning source.
    pub s: NodeId,
    /// The targets, in any order (answers are order-independent).
    pub targets: Vec<NodeId>,
    /// Approximation target `α`, echoed in the response line; the
    /// budget-driven allocation itself is `α`-independent, exactly as
    /// pool sampling is.
    pub alpha: f64,
    /// Shared invitation budget across all targets.
    pub budget: usize,
}

/// One target's slice of a [`CampaignAnswer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignTargetAnswer {
    /// The target.
    pub target: NodeId,
    /// Sampled walk mass (pool copies) the shared set covers for this
    /// target.
    pub covered: usize,
    /// Walks in this target's pool.
    pub samples: u64,
    /// `covered / samples` — the target's acceptance-probability
    /// estimate under the shared invitation set.
    pub estimate: f64,
    /// Whether this target's pool came from the cache.
    pub cache_hit: bool,
}

/// The answer to one [`CampaignQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAnswer {
    /// The shared invitation set (original-space ids, `≤ budget`).
    pub invitations: InvitationSet,
    /// Per-target outcomes, in canonical (ascending node id) order.
    pub targets: Vec<CampaignTargetAnswer>,
    /// Σ per-target estimates — the campaign objective.
    pub objective: f64,
    /// Which allocation arm won (`joint`, `equal_split`,
    /// `proportional_split`); ties keep `joint`.
    pub arm: &'static str,
    /// Every arm's objective, in `[joint, equal_split,
    /// proportional_split]` order — what `raf experiment --targets`
    /// charts as joint-vs-independent-split gain.
    pub arm_objectives: [f64; 3],
    /// Walks requested per target pool (the context's walk ceiling).
    pub walks: u64,
    /// How many target pools were answered from the cache.
    pub hits: usize,
}

/// The answer to one [`Query`], with the intermediate quantities the
/// paper's analysis talks about plus the cache outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The invitation set `I*` (original-space ids).
    pub invitations: InvitationSet,
    /// The solved parameter set `(ε0, ε1, β)` for this query's `α`.
    pub parameters: ParameterSet,
    /// The pool's `p_max` estimate `|B¹_l| / l`.
    pub pmax_estimate: f64,
    /// Walks actually sampled into the pool: the effective budget (after
    /// the [`ServeConfig::walks`] clamp), or fewer when the deadline
    /// truncated sampling (then [`degraded`](Self::degraded) is set).
    pub walks: u64,
    /// `|B¹_l|`: type-1 realizations in the pool.
    pub type1_count: usize,
    /// The cover requirement `p = ⌈β·|B¹_l|⌉`.
    pub cover_p: usize,
    /// Sets actually covered by `I*` (≥ `cover_p`).
    pub covered: usize,
    /// Whether the pool came from the cache (`false` = freshly sampled).
    pub cache_hit: bool,
    /// Whether the pool is a deadline-truncated prefix of the requested
    /// walk count. The estimator is *anytime*: a partial pool's answer
    /// is still valid, just wider — and for a pure work-budget deadline
    /// it is bit-identical for a given `(seed, budget)`.
    pub degraded: bool,
}

/// Why a query failed structural validation before touching the graph —
/// the payload of [`ServeError::InvalidQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRejection {
    /// The realization budget was zero.
    ZeroBudget,
    /// Source and target are the same node.
    SourceIsTarget,
    /// A node id does not exist in the resident graph. Caught up front,
    /// before key construction, so invalid ids never form pool keys or
    /// pollute the cache's miss counters on their way to instance
    /// validation.
    NodeOutOfRange {
        /// The offending id.
        node: usize,
        /// Nodes in the resident graph.
        node_count: usize,
    },
    /// A campaign listed no targets.
    NoTargets,
    /// A campaign listed the same target twice.
    DuplicateTarget {
        /// The repeated node id.
        target: usize,
    },
}

impl fmt::Display for QueryRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryRejection::ZeroBudget => write!(f, "budget must be positive"),
            QueryRejection::SourceIsTarget => write!(f, "source and target coincide"),
            QueryRejection::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            QueryRejection::NoTargets => write!(f, "campaign lists no targets"),
            QueryRejection::DuplicateTarget { target } => {
                write!(f, "duplicate campaign target {target}")
            }
        }
    }
}

/// Errors from the serving layer, one variant per failure surface so
/// callers (and the line protocol) can react per class instead of
/// string-matching.
#[derive(Debug)]
pub enum ServeError {
    /// A query failed structural validation before touching the graph.
    InvalidQuery(QueryRejection),
    /// Instance construction rejected the pair.
    Instance(ModelError),
    /// The parameter system rejected `(α, ε)`.
    Parameters(CoreError),
    /// The cover solve failed.
    Solver(CoverError),
    /// The pool observed no type-1 realization: `t` is unreachable from
    /// `N(s)` within the sampled walks.
    TargetUnreachable {
        /// Walks sampled before giving up.
        samples: u64,
    },
    /// One campaign target's pool observed no type-1 realization, making
    /// the campaign as specified infeasible. Any pools sampled for the
    /// other targets stay cached — retrying without the dead target
    /// hits them.
    CampaignUnreachable {
        /// The unreachable target's node id.
        target: usize,
        /// Walks sampled into that target's pool.
        samples: u64,
    },
    /// Admission control shed the query; the payload carries a retry
    /// hint. Nothing was sampled and session state is unchanged.
    Overloaded(ShedReason),
    /// The query's pool exceeded its allocation cap; the pool was
    /// discarded, never cached.
    ResourceExhausted {
        /// Bytes the pool needed.
        needed: usize,
        /// The allocation cap it exceeded.
        cap: usize,
    },
    /// A panic escaped the query pipeline and was contained: any
    /// half-built cache entry was evicted and the session remains
    /// consistent (subsequent queries answer bit-identically to a fresh
    /// session).
    Internal {
        /// The panic message, as far as it could be recovered.
        reason: String,
    },
    /// An edge delta failed to apply to the resident graph (malformed
    /// spec, out-of-range endpoint, self-loop). The graph and every
    /// cached pool are unchanged.
    Delta(GraphError),
}

impl ServeError {
    /// A stable, short machine-readable class label (the error taxonomy
    /// as counters and logs see it).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::InvalidQuery(_) => "invalid-query",
            ServeError::Instance(_) => "invalid-pair",
            ServeError::Parameters(_) => "parameters",
            ServeError::Solver(_) => "solver",
            ServeError::TargetUnreachable { .. } => "unreachable",
            ServeError::CampaignUnreachable { .. } => "unreachable",
            ServeError::Overloaded(_) => "overloaded",
            ServeError::ResourceExhausted { .. } => "resource-exhausted",
            ServeError::Internal { .. } => "internal",
            ServeError::Delta(_) => "delta",
        }
    }

    /// Whether retrying the identical query later can succeed without
    /// changing it (back-pressure, not rejection) — the class batch
    /// drivers requeue.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Overloaded(ShedReason::SessionSaturated { .. }))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidQuery(rejection) => write!(f, "invalid query: {rejection}"),
            ServeError::Instance(e) => write!(f, "invalid pair: {e}"),
            ServeError::Parameters(e) => write!(f, "parameter solve failed: {e}"),
            ServeError::Solver(e) => write!(f, "cover solve failed: {e}"),
            ServeError::TargetUnreachable { samples } => {
                write!(f, "target unreachable within {samples} sampled walks")
            }
            ServeError::CampaignUnreachable { target, samples } => {
                write!(f, "campaign target {target} unreachable within {samples} sampled walks")
            }
            ServeError::Overloaded(reason) => write!(f, "overloaded: {reason}"),
            ServeError::ResourceExhausted { needed, cap } => {
                write!(f, "resource exhausted: pool needs {needed} bytes, allocation cap is {cap}")
            }
            ServeError::Internal { reason } => write!(f, "internal: {reason}"),
            ServeError::Delta(e) => write!(f, "delta rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Instance(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Parameters(e)
    }
}

impl From<CoverError> for ServeError {
    fn from(e: CoverError) -> Self {
        ServeError::Solver(e)
    }
}

/// Robustness counters of a session, cumulative over its lifetime (the
/// cache has its own, see [`CacheStats`]). Only [`SessionContext::query`]
/// calls count — pool prefetches via [`SessionContext::pool`] are not
/// queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered (successfully or not).
    pub queries: u64,
    /// Queries answered from a deadline-truncated partial pool.
    pub degraded: u64,
    /// Queries shed by admission control ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Queries that tripped panic isolation ([`ServeError::Internal`]).
    pub internal: u64,
    /// Queries rejected for exceeding an allocation cap
    /// ([`ServeError::ResourceExhausted`]).
    pub resource: u64,
}

/// A serving session: one resident [`CsrGraph`] snapshot (optionally
/// relabeled — queries and answers stay in original ids either way), a
/// [`PoolCache`] of sampled pools, and the configuration that makes
/// every answer a pure function of the query.
///
/// Failure paths are part of the contract: a panic anywhere in the query
/// pipeline is contained to that query ([`ServeError::Internal`]), and a
/// deterministic [`FaultPlan`] can be attached
/// ([`set_fault_plan`](Self::set_fault_plan)) to exercise every failure
/// surface reproducibly. With the default (empty) plan and unlimited
/// policies, behavior is bit-identical to a context without any of this
/// machinery.
#[derive(Debug)]
pub struct SessionContext<'g> {
    csr: &'g CsrGraph,
    relabeling: Option<Arc<Relabeling>>,
    config: ServeConfig,
    cache: PoolCache,
    faults: FaultPlan,
    /// Zero-based index the next `query()` call gets (fault sites are
    /// addressed by it).
    serial: u64,
    session: SessionStats,
    /// Owned post-churn snapshot; set by the first
    /// [`apply_delta`](Self::apply_delta) and replaced by each later one.
    /// While present it shadows the borrowed `csr` everywhere.
    dynamic: Option<DynamicSnapshot>,
    /// How many deltas have been applied — mixed into repair seeds so
    /// each delta's repair walks are fresh yet reproducible.
    delta_serial: u64,
}

/// The owned snapshot a session serves from once edge churn begins. The
/// node set is frozen under churn, so the original relabeling table (if
/// any) remains a valid permutation and is reused for the rebuilt
/// layout.
#[derive(Debug)]
struct DynamicSnapshot {
    csr: CsrGraph,
    relabeling: Option<Arc<Relabeling>>,
}

/// What one [`SessionContext::apply_delta`] call did: the effective
/// graph change plus the fate of every pool that was resident when the
/// delta arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Edges actually added (absent before the delta).
    pub added: usize,
    /// Edges actually removed (present before the delta).
    pub removed: usize,
    /// Distinct endpoints of the effective ops.
    pub touched_nodes: usize,
    /// Resident entries repaired in place (stale walk mass re-sampled,
    /// fingerprint re-stamped, bytes re-accounted).
    pub repaired: usize,
    /// Resident entries untouched: no stored walk drew a step at a
    /// touched node.
    pub untouched: usize,
    /// Resident entries evicted instead of repaired (the delta touched
    /// the entry's `s` or `t`, or the pair became invalid): the next
    /// query resamples from the pure seed on the post-delta graph.
    pub flushed: usize,
    /// Total walk mass re-sampled across the repaired entries — the
    /// quantity repair cost scales with (compare: a flush re-samples the
    /// entry's full walk count).
    pub resampled_walks: u64,
    /// Whether the delta was a no-op (every op already satisfied); the
    /// graph and all pools are unchanged.
    pub noop: bool,
}

impl<'g> SessionContext<'g> {
    /// A context over a plain-layout snapshot.
    pub fn new(csr: &'g CsrGraph, config: ServeConfig) -> Self {
        let cache = PoolCache::new(config.cache_bytes);
        SessionContext {
            csr,
            relabeling: None,
            config,
            cache,
            faults: FaultPlan::empty(),
            serial: 0,
            session: SessionStats::default(),
            dynamic: None,
            delta_serial: 0,
        }
    }

    /// A context over a relabeled snapshot: queries take original-space
    /// ids and the relabeling maps them into (and pool contents out of)
    /// the snapshot's id space, so answers are bit-identical to a
    /// plain-layout context over the same graph.
    pub fn with_relabeling(
        csr: &'g CsrGraph,
        relabeling: Arc<Relabeling>,
        config: ServeConfig,
    ) -> Self {
        let cache = PoolCache::new(config.cache_bytes);
        SessionContext {
            csr,
            relabeling: Some(relabeling),
            config,
            cache,
            faults: FaultPlan::empty(),
            serial: 0,
            session: SessionStats::default(),
            dynamic: None,
            delta_serial: 0,
        }
    }

    /// The snapshot queries currently run against: the owned post-churn
    /// snapshot once a delta has been applied, the borrowed one before.
    fn active_csr(&self) -> &CsrGraph {
        match &self.dynamic {
            Some(d) => &d.csr,
            None => self.csr,
        }
    }

    fn active_relabeling(&self) -> Option<&Arc<Relabeling>> {
        match &self.dynamic {
            Some(d) => d.relabeling.as_ref(),
            None => self.relabeling.as_ref(),
        }
    }

    /// Number of deltas applied to this session so far.
    pub fn deltas_applied(&self) -> u64 {
        self.delta_serial
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative robustness counters.
    pub fn session_stats(&self) -> SessionStats {
        self.session
    }

    /// Attaches a fault-injection plan (replacing any previous one).
    /// Sites are addressed by the zero-based serial of subsequent
    /// [`query`](Self::query) calls. An empty plan leaves behavior
    /// bit-identical to a plan-free context.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The attached fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Number of pools currently resident.
    pub fn cached_pools(&self) -> usize {
        self.cache.len()
    }

    /// Bytes currently charged by resident pools (and their cover
    /// instances) against [`ServeConfig::cache_bytes`].
    pub fn resident_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// The pool key a query resolves to: the pair plus the effective
    /// walk count (budget clamped to the context ceiling). Queries that
    /// differ only in `α` — or in budgets that clamp to the same walk
    /// count — share a key, which is the reuse the cache exploits.
    pub fn key_for(&self, query: &Query) -> Result<PoolKey, ServeError> {
        if query.budget == 0 {
            return Err(ServeError::InvalidQuery(QueryRejection::ZeroBudget));
        }
        if query.s == query.t {
            return Err(ServeError::InvalidQuery(QueryRejection::SourceIsTarget));
        }
        let node_count = self.active_csr().node_count();
        let narrow = |node: NodeId| -> Result<u32, ServeError> {
            let index = node.index();
            if index >= node_count {
                return Err(ServeError::InvalidQuery(QueryRejection::NodeOutOfRange {
                    node: index,
                    node_count,
                }));
            }
            u32::try_from(index).map_err(|_| {
                ServeError::InvalidQuery(QueryRejection::NodeOutOfRange { node: index, node_count })
            })
        };
        Ok(PoolKey {
            s: narrow(query.s)?,
            t: narrow(query.t)?,
            walks: query.budget.min(self.config.walks),
        })
    }

    /// The per-key pool seed: a pure mix of the master seed and the
    /// pair, independent of arrival order and of the walk count (the
    /// walk count differentiates keys, not seeds). Delegates to
    /// [`pair_seed`] — the one derivation shared by every layer that
    /// samples a per-pair pool — so campaign targets, single-target
    /// queries, and offline pipelines all land on the same cache keys
    /// *and* the same pool bytes.
    fn pool_seed(&self, key: &PoolKey) -> u64 {
        pair_seed(self.config.seed, key.s, key.t)
    }

    fn instance(&self, s: NodeId, t: NodeId) -> Result<FriendingInstance<'_>, ServeError> {
        let csr = self.active_csr();
        Ok(match self.active_relabeling() {
            None => FriendingInstance::new(csr, s, t)?,
            Some(r) => FriendingInstance::relabeled(csr, s, t, Arc::clone(r))?,
        })
    }

    /// The per-key repair seed for the current delta generation: a pure
    /// mix of the pool seed and the delta serial, so repairs draw walks
    /// disjoint from the original pool's yet fully reproducible from
    /// `(config, query history, delta history)`.
    fn repair_seed(&self, key: &PoolKey) -> u64 {
        splitmix64(self.pool_seed(key) ^ splitmix64(self.delta_serial))
    }

    fn check_query_cap(&self, key: &PoolKey) -> Result<(), ServeError> {
        if let Some(cap) = self.config.admission.max_query_walks {
            if key.walks > cap {
                return Err(ServeError::Overloaded(ShedReason::QueryTooLarge {
                    walks: key.walks,
                    cap,
                }));
            }
        }
        Ok(())
    }

    /// Fetches (or samples) the entry for a key, reporting whether it was
    /// a hit. A cache miss samples under the context's deadline policy
    /// (so the pool may be a deterministic truncation) and under any
    /// faults injected for this query.
    fn entry_for(
        &mut self,
        query: &Query,
        key: &PoolKey,
        faults: &[FaultKind],
    ) -> Result<(CachedPool, bool), ServeError> {
        if let Some(entry) = self.cache.get(key) {
            return Ok((entry, true));
        }
        let instance = self.instance(query.s, query.t)?;
        let panic_at = faults.iter().find_map(|f| match f {
            FaultKind::PanicAtWalk(w) => Some(*w),
            _ => None,
        });
        let slow_ms = faults.iter().find_map(|f| match f {
            FaultKind::SlowBatchMs(ms) => Some(*ms),
            _ => None,
        });
        let probe = move |walks: u64| {
            if let Some(ms) = slow_ms {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            if let Some(at) = panic_at {
                if walks >= at {
                    panic!("injected fault: panic at walk {walks}");
                }
            }
        };
        let control = SampleControl {
            max_steps: self.config.deadline.work_budget,
            deadline: self.config.deadline.deadline_from_now(),
            probe: if panic_at.is_some() || slow_ms.is_some() { Some(&probe) } else { None },
        };
        let pool = SampleRequest::new(key.walks)
            .seed(self.pool_seed(key))
            .threads(self.config.threads)
            .control(&control)
            .run(&instance);
        if let Some(cap) = faults.iter().find_map(|f| match f {
            FaultKind::AllocCap(b) => Some(*b),
            _ => None,
        }) {
            let needed = pool.heap_bytes();
            if needed > cap {
                return Err(ServeError::ResourceExhausted { needed, cap });
            }
        }
        let cover = CoverInstance::from_path_pool(self.active_csr().node_count(), pool.clone())?;
        let entry = if self.config.front_coded_cache {
            CachedPool::new_front_coded(&pool, Arc::new(cover))
        } else {
            CachedPool::new(Arc::new(pool), Arc::new(cover))
        };
        self.cache.insert(*key, entry.clone());
        if faults.contains(&FaultKind::CorruptCacheEntry) {
            self.cache.corrupt_entry(key);
        }
        Ok((entry, false))
    }

    /// The cached realization pool for a pair at a walk budget — the
    /// building block `raf experiment` shares evaluation pools through.
    /// Counts a hit or miss like any query, but does not consume a query
    /// serial (fault sites address `query()` calls only).
    ///
    /// # Errors
    ///
    /// See [`ServeError`]; `α` plays no role here.
    pub fn pool(&mut self, s: NodeId, t: NodeId, budget: u64) -> Result<Arc<PathPool>, ServeError> {
        let probe = Query { s, t, alpha: 1.0, budget };
        let key = self.key_for(&probe)?;
        self.check_query_cap(&key)?;
        let (entry, _) = self.entry_for(&probe, &key, &[])?;
        Ok(entry.pool())
    }

    /// Answers one query: pool from the cache (sampling only on a true
    /// key miss), then the `α`-dependent cover phase on the resident
    /// cover instance.
    ///
    /// The whole pipeline runs behind panic isolation: a panic (injected
    /// or real) is contained to this query as [`ServeError::Internal`],
    /// any half-built cache entry is evicted, and the session stays
    /// consistent — subsequent queries answer bit-identically to a fresh
    /// session.
    ///
    /// # Errors
    ///
    /// See [`ServeError`].
    pub fn query(&mut self, query: &Query) -> Result<QueryAnswer, ServeError> {
        let serial = self.serial;
        self.serial += 1;
        self.session.queries += 1;
        let faults: Vec<FaultKind> = self.faults.for_query(serial).collect();
        let result = self.query_guarded(query, &faults);
        match &result {
            Ok(answer) if answer.degraded => self.session.degraded += 1,
            Err(ServeError::Overloaded(_)) => self.session.shed += 1,
            Err(ServeError::Internal { .. }) => self.session.internal += 1,
            Err(ServeError::ResourceExhausted { .. }) => self.session.resource += 1,
            _ => {}
        }
        result
    }

    fn query_guarded(
        &mut self,
        query: &Query,
        faults: &[FaultKind],
    ) -> Result<QueryAnswer, ServeError> {
        let key = self.key_for(query)?;
        self.check_query_cap(&key)?;
        match catch_unwind(AssertUnwindSafe(|| self.query_inner(query, &key, faults))) {
            Ok(result) => result,
            Err(payload) => {
                // The entry (if any made it in) may be half-built: evict
                // it so the next query on this key resamples from the
                // pure seed instead of trusting post-panic state.
                self.cache.remove(&key);
                Err(ServeError::Internal { reason: panic_reason(payload.as_ref()) })
            }
        }
    }

    fn query_inner(
        &mut self,
        query: &Query,
        key: &PoolKey,
        faults: &[FaultKind],
    ) -> Result<QueryAnswer, ServeError> {
        let (entry, cache_hit) = self.entry_for(query, key, faults)?;
        let pool = entry.pool();
        let degraded = pool.total_samples() < key.walks;
        let parameters =
            ParameterSet::solve(query.alpha, self.config.epsilon, self.active_csr().node_count())?;
        let b1 = pool.type1_count();
        if b1 == 0 {
            return Err(ServeError::TargetUnreachable { samples: pool.total_samples() });
        }
        let p = raf_cover::cover_requirement(parameters.beta, b1);
        let msc = raf_cover::solve_msc(&ChlamtacPortfolio::new(), &entry.cover, p)?;
        let mut invitations = InvitationSet::empty(self.active_csr().node_count());
        for &e in &msc.elements {
            invitations.insert(NodeId::new(e as usize));
        }
        Ok(QueryAnswer {
            invitations,
            parameters,
            pmax_estimate: pool.pmax_estimate(),
            walks: pool.total_samples(),
            type1_count: b1,
            cover_p: p,
            covered: msc.covered_weight,
            cache_hit,
            degraded,
        })
    }

    /// Answers a batch in order, one result per query (errors don't stop
    /// the batch — a service keeps serving).
    pub fn query_batch(&mut self, queries: &[Query]) -> Vec<Result<QueryAnswer, ServeError>> {
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// Answers one multi-target campaign: resolve each target's pool
    /// through the shared [`PoolCache`] (same keys and same pure seeds a
    /// single-target [`Query`] for that pair uses — warming is
    /// bidirectional), then allocate the shared invitation budget across
    /// the targets with [`raf_cover::allocate_budget`].
    ///
    /// Targets are canonicalized to ascending node id first, so the
    /// answer is independent of the order the request listed them in.
    /// Campaigns count cache hits and misses like queries do, but do not
    /// consume a query serial (fault sites address [`query`](Self::query)
    /// calls only).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidQuery`] for an empty or duplicated target
    /// list (and the usual per-pair rejections),
    /// [`ServeError::CampaignUnreachable`] when a target's pool has no
    /// type-1 realization. Pools sampled before the failure stay cached.
    pub fn campaign(&mut self, query: &CampaignQuery) -> Result<CampaignAnswer, ServeError> {
        if query.targets.is_empty() {
            return Err(ServeError::InvalidQuery(QueryRejection::NoTargets));
        }
        let mut targets = query.targets.clone();
        targets.sort_by_key(|t| t.index());
        for pair in targets.windows(2) {
            if pair[0] == pair[1] {
                return Err(ServeError::InvalidQuery(QueryRejection::DuplicateTarget {
                    target: pair[0].index(),
                }));
            }
        }
        // Per-target pools at the context's walk ceiling: exactly the key
        // a default-budget single query for the pair resolves to.
        let walks = self.config.walks;
        let mut pools = Vec::with_capacity(targets.len());
        let mut hit_flags = Vec::with_capacity(targets.len());
        let mut entries = Vec::with_capacity(targets.len());
        for &t in &targets {
            let probe = Query { s: query.s, t, alpha: query.alpha, budget: walks };
            let key = self.key_for(&probe)?;
            self.check_query_cap(&key)?;
            let (entry, hit) = self.entry_for(&probe, &key, &[])?;
            let pool = entry.pool();
            if pool.type1_count() == 0 {
                return Err(ServeError::CampaignUnreachable {
                    target: t.index(),
                    samples: pool.total_samples(),
                });
            }
            pools.push(pool);
            hit_flags.push(hit);
            entries.push(entry);
        }
        let budget_targets: Vec<raf_cover::BudgetTarget<'_>> = entries
            .iter()
            .zip(&pools)
            .map(|(entry, pool)| raf_cover::BudgetTarget {
                sets: &entry.cover,
                total_samples: pool.total_samples().max(1),
            })
            .collect();
        let alloc = raf_cover::allocate_budget(&budget_targets, query.budget)?;
        let node_count = self.active_csr().node_count();
        let mut invitations = InvitationSet::empty(node_count);
        for &v in &alloc.chosen {
            invitations.insert(NodeId::new(v as usize));
        }
        let per_target: Vec<CampaignTargetAnswer> = targets
            .iter()
            .enumerate()
            .map(|(i, &target)| {
                let samples = pools[i].total_samples();
                let covered = alloc.per_target_covered[i];
                CampaignTargetAnswer {
                    target,
                    covered,
                    samples,
                    estimate: covered as f64 / samples.max(1) as f64,
                    cache_hit: hit_flags[i],
                }
            })
            .collect();
        Ok(CampaignAnswer {
            invitations,
            objective: alloc.objective,
            arm: alloc.arm.name(),
            arm_objectives: alloc.arm_objectives,
            walks,
            hits: hit_flags.iter().filter(|&&h| h).count(),
            targets: per_target,
        })
    }

    /// Applies an edge delta to the session: rebuilds the resident
    /// snapshot from the post-delta graph (node set frozen; the original
    /// relabeling, if any, stays in force) and repairs resident cache
    /// entries **in place** instead of flushing them.
    ///
    /// Per entry, the edge→walk index resolves exactly the stored walks
    /// that drew a step at a touched endpoint; only that multiplicity
    /// mass is re-sampled (on the post-delta graph, under a repair seed
    /// mixed from the pool seed and the delta serial), the entry is
    /// re-fingerprinted, and its bytes re-accounted against the budget.
    /// Entries whose own `s` or `t` the delta touched — or whose pair is
    /// no longer a valid instance — are evicted; their next query
    /// resamples from the pure pool seed like any cold miss. A no-op
    /// delta (every op already satisfied) changes nothing.
    ///
    /// `social` is the caller's canonical edge-list graph — the same one
    /// the resident snapshot was built from — and is advanced to the
    /// post-delta graph on success, keeping the two views in lockstep
    /// across a churn stream.
    ///
    /// # Errors
    ///
    /// [`ServeError::Delta`] if the delta does not apply (out-of-range
    /// endpoint, self-loop); the graph and all pools are unchanged.
    pub fn apply_delta(
        &mut self,
        delta: &EdgeDelta,
        social: &mut SocialGraph,
        scheme: WeightScheme,
    ) -> Result<DeltaOutcome, ServeError> {
        debug_assert_eq!(
            social.node_count(),
            self.active_csr().node_count(),
            "social graph and resident snapshot must describe the same node set"
        );
        let applied = delta.apply(social, scheme).map_err(ServeError::Delta)?;
        let touched = applied.touched_nodes();
        let mut outcome = DeltaOutcome {
            added: applied.added.len(),
            removed: applied.removed.len(),
            touched_nodes: touched.len(),
            repaired: 0,
            untouched: 0,
            flushed: 0,
            resampled_walks: 0,
            noop: applied.is_noop(),
        };
        if applied.is_noop() {
            return Ok(outcome);
        }
        let relabeling = self.active_relabeling().cloned();
        let csr = match &relabeling {
            None => applied.graph.to_csr(),
            Some(r) => applied.graph.to_csr_relabeled(r),
        };
        *social = applied.graph;
        self.dynamic = Some(DynamicSnapshot { csr, relabeling });
        self.delta_serial += 1;

        let keys: Vec<PoolKey> = self.cache.lru_keys().to_vec();
        for key in keys {
            let Some(entry) = self.cache.peek(&key) else { continue };
            // Repairing a corrupted entry would launder it: the repair
            // rebuilds the entry and restamps a fresh fingerprint, so a
            // pool that failed integrity would start serving as a valid
            // hit. Verify first; corruption found here is evicted like
            // lookup-time corruption and the next query resamples from
            // the pure per-pair seed on the post-delta graph.
            if !entry.verify() {
                self.cache.evict_corrupt(&key);
                outcome.flushed += 1;
                continue;
            }
            let old_pool = entry.pool();
            let node_count = self.active_csr().node_count();
            let index = EdgeWalkIndex::build(&old_pool, node_count);
            let repair =
                match self.instance(NodeId::new(key.s as usize), NodeId::new(key.t as usize)) {
                    Ok(instance) => {
                        let template = SampleRequest::new(0)
                            .seed(self.repair_seed(&key))
                            .threads(self.config.threads);
                        Some(repair_pool(&old_pool, &index, &touched, &instance, template))
                    }
                    // The pair is no longer a valid instance (e.g. the delta
                    // made s and t adjacent): drop the pool.
                    Err(_) => None,
                };
            match repair {
                Some(PoolRepair::Repaired { resampled: 0, .. }) => outcome.untouched += 1,
                Some(PoolRepair::Repaired { pool, resampled, .. }) => {
                    let rebuilt =
                        CoverInstance::from_path_pool(node_count, pool.clone()).ok().map(|cover| {
                            if self.config.front_coded_cache {
                                CachedPool::new_front_coded(&pool, Arc::new(cover))
                            } else {
                                CachedPool::new(Arc::new(pool), Arc::new(cover))
                            }
                        });
                    match rebuilt {
                        Some(fresh) => {
                            if let Some(slot) = self.cache.entry_mut(&key) {
                                *slot = fresh;
                            }
                            if self.cache.reaccount(&key) {
                                outcome.repaired += 1;
                                outcome.resampled_walks += resampled;
                            } else {
                                // Grew past the budget: reaccount evicted it.
                                outcome.flushed += 1;
                            }
                        }
                        None => {
                            self.cache.remove(&key);
                            outcome.flushed += 1;
                        }
                    }
                }
                Some(PoolRepair::FullResample) | None => {
                    self.cache.remove(&key);
                    outcome.flushed += 1;
                }
            }
        }
        Ok(outcome)
    }
}

/// The cold reference: a fresh single-query context over the same graph
/// and configuration. A cache-hit answer from a long-lived context is
/// bit-identical to this (the equivalence the serving layer is built
/// on, property-tested in `tests/serving_equivalence.rs`) — including
/// degraded answers, because the work budget lives in the config.
///
/// # Errors
///
/// See [`ServeError`].
pub fn one_shot(
    csr: &CsrGraph,
    config: ServeConfig,
    query: &Query,
) -> Result<QueryAnswer, ServeError> {
    SessionContext::new(csr, config).query(query)
}

/// Recovers a human-readable message from a caught panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query worker panicked".to_string()
    }
}

/// SplitMix64 finalizer — the same per-seed decorrelation the sampler
/// uses for its worker threads, here decorrelating per-pair pool seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSite;
    use raf_graph::{GraphBuilder, WeightScheme};

    fn routes_csr() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 1), (0, 6), (6, 7), (7, 1)])
            .unwrap();
        b.build(WeightScheme::UniformByDegree).unwrap().to_csr()
    }

    fn q(alpha: f64, budget: u64) -> Query {
        Query { s: NodeId::new(0), t: NodeId::new(1), alpha, budget }
    }

    fn assert_equivalent(a: &QueryAnswer, b: &QueryAnswer) {
        // Everything except cache_hit, which legitimately differs
        // between warm and cold paths.
        assert_eq!(a.invitations, b.invitations);
        assert_eq!(a.pmax_estimate, b.pmax_estimate);
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.type1_count, b.type1_count);
        assert_eq!(a.cover_p, b.cover_p);
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.degraded, b.degraded);
    }

    #[test]
    fn warm_answer_matches_cold_one_shot() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 20_000, seed: 9, ..Default::default() };
        let cold = one_shot(&csr, cfg.clone(), &q(0.4, 20_000)).unwrap();
        assert!(!cold.cache_hit);
        let mut ctx = SessionContext::new(&csr, cfg);
        // Prime with a *different* alpha, then hit with the tested one.
        let primed = ctx.query(&q(0.7, 20_000)).unwrap();
        assert!(!primed.cache_hit);
        let warm = ctx.query(&q(0.4, 20_000)).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.invitations, cold.invitations);
        assert_eq!(warm.type1_count, cold.type1_count);
        assert_eq!(warm.cover_p, cold.cover_p);
        assert_eq!(warm.pmax_estimate, cold.pmax_estimate);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1, ..Default::default() });
    }

    #[test]
    fn alpha_and_clamped_budget_share_a_key() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 3, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg);
        let a = ctx.key_for(&q(0.2, 10_000)).unwrap();
        // Bigger budget clamps to the context ceiling: same key.
        let b = ctx.key_for(&q(0.9, 1_000_000)).unwrap();
        assert_eq!(a, b);
        // A genuinely smaller budget is a different pool.
        let c = ctx.key_for(&q(0.2, 5_000)).unwrap();
        assert_ne!(a, c);
        ctx.query(&q(0.2, 10_000)).unwrap();
        let hit = ctx.query(&q(0.9, 1_000_000)).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.walks, 10_000);
        let miss = ctx.query(&q(0.2, 5_000)).unwrap();
        assert!(!miss.cache_hit);
        assert_eq!(miss.walks, 5_000);
    }

    #[test]
    fn source_is_part_of_the_key() {
        // Pools depend on the source's seed frontier N(s), so two sources
        // aiming at one target must not share a pool.
        let csr = routes_csr();
        let ctx = SessionContext::new(&csr, ServeConfig::default());
        let k0 = ctx.key_for(&q(0.3, 1_000)).unwrap();
        let k2 = ctx
            .key_for(&Query { s: NodeId::new(2), t: NodeId::new(1), alpha: 0.3, budget: 1_000 })
            .unwrap();
        assert_ne!(k0, k2);
    }

    #[test]
    fn answers_are_arrival_order_independent() {
        // Pool seeds derive from (master seed, pair) only, so a pair's
        // answer is the same whether it was queried first or after other
        // pairs populated the cache.
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 8_000, seed: 21, ..Default::default() };
        let mut fresh = SessionContext::new(&csr, cfg.clone());
        let direct = fresh.query(&q(0.5, 8_000)).unwrap();
        let mut busy = SessionContext::new(&csr, cfg);
        busy.query(&Query { s: NodeId::new(2), t: NodeId::new(1), alpha: 0.3, budget: 8_000 })
            .unwrap();
        busy.query(&Query { s: NodeId::new(0), t: NodeId::new(5), alpha: 0.3, budget: 8_000 })
            .unwrap();
        let after = busy.query(&q(0.5, 8_000)).unwrap();
        assert_eq!(direct.invitations, after.invitations);
        assert_eq!(direct.pmax_estimate, after.pmax_estimate);
    }

    #[test]
    fn relabeled_context_is_bit_identical_to_plain() {
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1), (2, 4), (3, 5), (5, 1)]).unwrap();
        let social = b.build(WeightScheme::UniformByDegree).unwrap();
        let plain_csr = social.to_csr();
        let r = Arc::new(Relabeling::hub_bfs(&social));
        assert!(!r.is_identity());
        let relab_csr = social.to_csr_relabeled(&r);
        let cfg = ServeConfig { walks: 20_000, seed: 5, ..Default::default() };
        let mut plain = SessionContext::new(&plain_csr, cfg.clone());
        let mut relab = SessionContext::with_relabeling(&relab_csr, r, cfg);
        for alpha in [0.3, 0.6] {
            let a = plain.query(&q(alpha, 20_000)).unwrap();
            let b = relab.query(&q(alpha, 20_000)).unwrap();
            assert_eq!(a.invitations, b.invitations, "alpha={alpha}");
            assert_eq!(a.pmax_estimate, b.pmax_estimate);
            assert_eq!(a.covered, b.covered);
        }
        // Both contexts saw one miss then one hit.
        assert_eq!(plain.stats(), relab.stats());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let csr = routes_csr();
        let mut ctx = SessionContext::new(&csr, ServeConfig::default());
        assert!(matches!(
            ctx.query(&q(0.3, 0)),
            Err(ServeError::InvalidQuery(QueryRejection::ZeroBudget))
        ));
        let same = Query { s: NodeId::new(1), t: NodeId::new(1), alpha: 0.3, budget: 100 };
        assert!(matches!(
            ctx.query(&same),
            Err(ServeError::InvalidQuery(QueryRejection::SourceIsTarget))
        ));
        // alpha must exceed epsilon: the parameter system rejects it.
        assert!(matches!(ctx.query(&q(0.001, 100)), Err(ServeError::Parameters(_))));
        // Unreachable target: a node with no inbound route from N(s).
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let island = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let mut ctx = SessionContext::new(&island, ServeConfig::default());
        let across = Query { s: NodeId::new(0), t: NodeId::new(3), alpha: 0.3, budget: 500 };
        assert!(matches!(ctx.query(&across), Err(ServeError::TargetUnreachable { .. })));
    }

    #[test]
    fn out_of_range_ids_are_rejected_before_the_cache() {
        // Out-of-graph ids used to sail through key construction and
        // count a cache miss before instance validation rejected them;
        // now they fail structural validation without touching the
        // cache. (Ids beyond u32 never get this far: the protocol
        // parser rejects them before NodeId construction, which would
        // otherwise truncate in release builds — see protocol.rs.)
        let csr = routes_csr();
        let mut ctx = SessionContext::new(&csr, ServeConfig::default());
        let plain_oob = Query { s: NodeId::new(0), t: NodeId::new(999), alpha: 0.3, budget: 5_000 };
        assert!(matches!(
            ctx.query(&plain_oob),
            Err(ServeError::InvalidQuery(QueryRejection::NodeOutOfRange {
                node: 999,
                node_count: 8
            }))
        ));
        assert_eq!(ctx.stats(), CacheStats::default(), "rejection must not touch the cache");
        let err = ctx.query(&plain_oob).unwrap_err();
        assert_eq!(err.to_string(), "invalid query: node 999 out of range (graph has 8 nodes)");
    }

    #[test]
    fn batch_keeps_serving_past_errors() {
        let csr = routes_csr();
        let mut ctx = SessionContext::new(&csr, ServeConfig::default());
        let batch = [q(0.4, 5_000), q(0.4, 0), q(0.6, 5_000), q(0.2, 5_000)];
        let answers = ctx.query_batch(&batch);
        assert_eq!(answers.len(), 4);
        assert!(answers[0].is_ok() && answers[1].is_err());
        assert!(answers[2].as_ref().unwrap().cache_hit);
        assert!(answers[3].as_ref().unwrap().cache_hit);
        let stats = ctx.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(ctx.session_stats().queries, 4);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ServeError::InvalidQuery(QueryRejection::ZeroBudget);
        assert_eq!(e.to_string(), "invalid query: budget must be positive");
        assert_eq!(e.code(), "invalid-query");
        let e = ServeError::InvalidQuery(QueryRejection::SourceIsTarget);
        assert_eq!(e.to_string(), "invalid query: source and target coincide");
        assert!(ServeError::TargetUnreachable { samples: 42 }.to_string().contains("42"));
        let e = ServeError::Internal { reason: "boom".into() };
        assert_eq!(e.to_string(), "internal: boom");
        assert_eq!(e.code(), "internal");
        let e = ServeError::ResourceExhausted { needed: 100, cap: 10 };
        assert!(e.to_string().starts_with("resource exhausted:"));
        assert!(!e.is_retryable());
        let shed = ServeError::Overloaded(ShedReason::SessionSaturated {
            inflight: 10,
            queries: 2,
            cap: 8,
        });
        assert!(shed.to_string().starts_with("overloaded:"));
        assert!(shed.is_retryable());
        let too_big = ServeError::Overloaded(ShedReason::QueryTooLarge { walks: 9, cap: 5 });
        assert!(!too_big.is_retryable(), "shrinking is on the client, not on time");
    }

    #[test]
    fn work_budget_degrades_deterministically() {
        let csr = routes_csr();
        let budgeted = ServeConfig {
            walks: 20_000,
            seed: 9,
            deadline: DeadlinePolicy { work_budget: Some(4_000), wall_clock_ms: None },
            ..Default::default()
        };
        let mut ctx = SessionContext::new(&csr, budgeted.clone());
        let first = ctx.query(&q(0.4, 20_000)).unwrap();
        assert!(first.degraded, "4k steps cannot sample 20k walks");
        assert!(!first.cache_hit);
        assert!(first.walks < 20_000 && first.walks > 0);
        // Degraded pools are cached; the hit is degraded the same way.
        let warm = ctx.query(&q(0.4, 20_000)).unwrap();
        assert!(warm.cache_hit);
        assert_equivalent(&first, &warm);
        // And a cold one-shot with the same config is bit-identical:
        // the work budget is part of the pure function.
        let cold = one_shot(&csr, budgeted, &q(0.4, 20_000)).unwrap();
        assert_equivalent(&first, &cold);
        assert_eq!(ctx.session_stats().degraded, 2);
    }

    #[test]
    fn degraded_walks_are_monotone_in_work_budget() {
        let csr = routes_csr();
        let mut last_walks = 0;
        for budget in [500u64, 2_000, 8_000, 32_000] {
            let cfg = ServeConfig {
                walks: 10_000,
                seed: 9,
                deadline: DeadlinePolicy { work_budget: Some(budget), wall_clock_ms: None },
                ..Default::default()
            };
            let answer = one_shot(&csr, cfg, &q(0.4, 10_000)).unwrap();
            assert!(answer.walks >= last_walks, "budget {budget} lost walks");
            last_walks = answer.walks;
        }
        // A generous budget is not degraded at all and matches the
        // unlimited answer exactly.
        let unlimited = one_shot(
            &csr,
            ServeConfig { walks: 10_000, seed: 9, ..Default::default() },
            &q(0.4, 10_000),
        )
        .unwrap();
        assert!(!unlimited.degraded);
        assert_eq!(last_walks, unlimited.walks);
    }

    #[test]
    fn injected_panic_is_contained_and_session_recovers() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 9, ..Default::default() };
        let mut plan = FaultPlan::empty();
        plan.push(FaultSite { query: 0, kind: FaultKind::PanicAtWalk(0) });
        let mut faulty = SessionContext::new(&csr, cfg.clone());
        faulty.set_fault_plan(plan);
        let err = faulty.query(&q(0.4, 10_000)).unwrap_err();
        assert!(matches!(&err, ServeError::Internal { reason } if reason.contains("injected")));
        assert_eq!(faulty.session_stats().internal, 1);
        assert_eq!(faulty.cached_pools(), 0, "no half-built entry may survive");
        // The session recovers: the same query now answers exactly like
        // a fresh fault-free session.
        let after = faulty.query(&q(0.4, 10_000)).unwrap();
        let fresh = one_shot(&csr, cfg, &q(0.4, 10_000)).unwrap();
        assert_equivalent(&after, &fresh);
    }

    #[test]
    fn alloc_cap_fault_rejects_without_caching() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 9, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg.clone());
        let mut plan = FaultPlan::empty();
        plan.push(FaultSite { query: 0, kind: FaultKind::AllocCap(1) });
        ctx.set_fault_plan(plan);
        let err = ctx.query(&q(0.4, 10_000)).unwrap_err();
        assert!(matches!(err, ServeError::ResourceExhausted { cap: 1, .. }));
        assert_eq!(ctx.cached_pools(), 0, "an over-cap pool must not be cached");
        assert_eq!(ctx.session_stats().resource, 1);
        let after = ctx.query(&q(0.4, 10_000)).unwrap();
        let fresh = one_shot(&csr, cfg, &q(0.4, 10_000)).unwrap();
        assert_equivalent(&after, &fresh);
    }

    #[test]
    fn corruption_fault_forces_integrity_eviction_and_resample() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 9, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg);
        let mut plan = FaultPlan::empty();
        plan.push(FaultSite { query: 0, kind: FaultKind::CorruptCacheEntry });
        ctx.set_fault_plan(plan);
        let first = ctx.query(&q(0.4, 10_000)).unwrap();
        // The corrupted entry is detected on the next lookup: evicted,
        // resampled, and — pools being pure — the answer is unchanged.
        let second = ctx.query(&q(0.4, 10_000)).unwrap();
        assert!(!second.cache_hit, "a corrupt entry must not serve as a hit");
        assert_equivalent(&first, &second);
        assert_eq!(ctx.stats().integrity_evictions, 1);
        // The resampled (clean) entry serves hits again.
        let third = ctx.query(&q(0.4, 10_000)).unwrap();
        assert!(third.cache_hit);
    }

    #[test]
    fn per_query_cap_sheds_oversized_queries() {
        let csr = routes_csr();
        let cfg = ServeConfig {
            walks: 50_000,
            admission: AdmissionPolicy { max_query_walks: Some(6_000), max_inflight_walks: None },
            ..Default::default()
        };
        let mut ctx = SessionContext::new(&csr, cfg);
        let err = ctx.query(&q(0.4, 10_000)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Overloaded(ShedReason::QueryTooLarge { walks: 10_000, cap: 6_000 })
        ));
        assert_eq!(ctx.session_stats().shed, 1);
        assert_eq!(ctx.stats(), CacheStats::default(), "shed queries never touch the cache");
        // Within the cap, business as usual.
        let ok = ctx.query(&q(0.4, 6_000)).unwrap();
        assert!(!ok.degraded);
        assert_eq!(ok.walks, 6_000);
    }

    fn routes_social() -> SocialGraph {
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 1), (0, 6), (6, 7), (7, 1)])
            .unwrap();
        b.build(WeightScheme::UniformByDegree).unwrap()
    }

    #[test]
    fn apply_delta_repairs_resident_pools_in_place() {
        let mut social = routes_social();
        let csr = social.to_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 9, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg);
        let before = ctx.query(&q(0.4, 10_000)).unwrap();
        // Removing (2,3) strands node 3's second route; node 3 is a draw
        // site of stored walks, but neither s=0 nor t=1 is touched.
        let outcome = ctx
            .apply_delta(
                &EdgeDelta::parse("-2:3").unwrap(),
                &mut social,
                WeightScheme::UniformByDegree,
            )
            .unwrap();
        assert_eq!((outcome.added, outcome.removed), (0, 1));
        assert!(!outcome.noop);
        assert_eq!(outcome.repaired, 1, "the resident entry must be repaired, not flushed");
        assert_eq!(outcome.flushed, 0);
        assert!(outcome.resampled_walks > 0);
        assert!(
            outcome.resampled_walks < before.walks,
            "repair must re-sample a strict subset of the pool"
        );
        assert_eq!(social.edge_count(), 8, "the caller's graph advances in lockstep");
        assert_eq!(ctx.deltas_applied(), 1);
        // The repaired entry keeps serving as a hit, at full walk count.
        let after = ctx.query(&q(0.4, 10_000)).unwrap();
        assert!(after.cache_hit);
        assert_eq!(after.walks, before.walks);
        assert!(after.type1_count > 0);
    }

    #[test]
    fn churned_sessions_answer_deterministically() {
        // Two sessions fed the same query/delta history answer
        // bit-identically: pools stay a pure function of (config, pair,
        // delta history) through repair.
        let run = || {
            let mut social = routes_social();
            let csr = social.to_csr();
            let cfg = ServeConfig { walks: 8_000, seed: 21, ..Default::default() };
            let mut ctx = SessionContext::new(&csr, cfg);
            ctx.query(&q(0.5, 8_000)).unwrap();
            ctx.apply_delta(
                &EdgeDelta::parse("-2:3,+3:6").unwrap(),
                &mut social,
                WeightScheme::UniformByDegree,
            )
            .unwrap();
            let a = ctx.query(&q(0.5, 8_000)).unwrap();
            ctx.apply_delta(
                &EdgeDelta::parse("-4:5").unwrap(),
                &mut social,
                WeightScheme::UniformByDegree,
            )
            .unwrap();
            let b = ctx.query(&q(0.3, 8_000)).unwrap();
            (a, b)
        };
        let (a1, b1) = run();
        let (a2, b2) = run();
        assert_equivalent(&a1, &a2);
        assert_equivalent(&b1, &b2);
        assert_eq!(a1.invitations, a2.invitations);
        assert_eq!(b1.invitations, b2.invitations);
    }

    #[test]
    fn noop_delta_changes_nothing() {
        let mut social = routes_social();
        let csr = social.to_csr();
        let cfg = ServeConfig { walks: 8_000, seed: 5, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg);
        let before = ctx.query(&q(0.4, 8_000)).unwrap();
        // Adding a present edge and removing an absent one are both
        // ineffective: the delta collapses to a no-op.
        let outcome = ctx
            .apply_delta(
                &EdgeDelta::parse("+0:2,-3:7").unwrap(),
                &mut social,
                WeightScheme::UniformByDegree,
            )
            .unwrap();
        assert!(outcome.noop);
        assert_eq!(outcome.touched_nodes, 0);
        assert_eq!(ctx.deltas_applied(), 0, "a no-op consumes no delta generation");
        let after = ctx.query(&q(0.4, 8_000)).unwrap();
        assert!(after.cache_hit, "pools survive a no-op untouched");
        assert_equivalent(&before, &after);
    }

    #[test]
    fn delta_touching_the_pair_flushes_to_the_pure_seed() {
        let mut social = routes_social();
        let csr = social.to_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 9, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg.clone());
        ctx.query(&q(0.4, 10_000)).unwrap();
        // (1,6) touches the target t=1: incremental repair cannot fix the
        // first-draw distribution, so the entry is flushed.
        let outcome = ctx
            .apply_delta(
                &EdgeDelta::parse("+1:6").unwrap(),
                &mut social,
                WeightScheme::UniformByDegree,
            )
            .unwrap();
        assert_eq!(outcome.flushed, 1);
        assert_eq!(outcome.repaired, 0);
        assert_eq!(ctx.cached_pools(), 0);
        // The next query cold-misses and must answer exactly like a
        // fresh session over the post-delta graph: eviction falls back
        // to the pure (config, pair) seed, never to stale state.
        let after = ctx.query(&q(0.4, 10_000)).unwrap();
        assert!(!after.cache_hit);
        let fresh = one_shot(&social.to_csr(), cfg, &q(0.4, 10_000)).unwrap();
        assert_equivalent(&after, &fresh);
    }

    #[test]
    fn invalid_delta_leaves_the_session_untouched() {
        let mut social = routes_social();
        let csr = social.to_csr();
        let mut ctx =
            SessionContext::new(&csr, ServeConfig { walks: 8_000, seed: 5, ..Default::default() });
        let before = ctx.query(&q(0.4, 8_000)).unwrap();
        let err = ctx
            .apply_delta(
                &EdgeDelta::parse("+0:999").unwrap(),
                &mut social,
                WeightScheme::UniformByDegree,
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Delta(_)));
        assert_eq!(err.code(), "delta");
        assert_eq!(social.edge_count(), 9, "the caller's graph is unchanged");
        assert_eq!(ctx.deltas_applied(), 0);
        let after = ctx.query(&q(0.4, 8_000)).unwrap();
        assert!(after.cache_hit);
        assert_equivalent(&before, &after);
    }

    #[test]
    fn relabeled_sessions_churn_bit_identically_to_plain() {
        let mut plain_social = routes_social();
        let mut relab_social = plain_social.clone();
        let plain_csr = plain_social.to_csr();
        let r = Arc::new(Relabeling::hub_bfs(&relab_social));
        assert!(!r.is_identity());
        let relab_csr = relab_social.to_csr_relabeled(&r);
        let cfg = ServeConfig { walks: 10_000, seed: 5, ..Default::default() };
        let mut plain = SessionContext::new(&plain_csr, cfg.clone());
        let mut relab = SessionContext::with_relabeling(&relab_csr, r, cfg);
        plain.query(&q(0.4, 10_000)).unwrap();
        relab.query(&q(0.4, 10_000)).unwrap();
        let delta = EdgeDelta::parse("-2:3,+3:6").unwrap();
        let po =
            plain.apply_delta(&delta, &mut plain_social, WeightScheme::UniformByDegree).unwrap();
        let ro =
            relab.apply_delta(&delta, &mut relab_social, WeightScheme::UniformByDegree).unwrap();
        assert_eq!(po, ro, "repair outcomes must agree across layouts");
        for alpha in [0.3, 0.6] {
            let a = plain.query(&q(alpha, 10_000)).unwrap();
            let b = relab.query(&q(alpha, 10_000)).unwrap();
            assert_eq!(a.invitations, b.invitations, "alpha={alpha}");
            assert_equivalent(&a, &b);
        }
    }

    #[test]
    fn front_coded_cache_answers_bit_identically_to_arena() {
        // Branching routes with shared tails: stored paths are long
        // enough that front coding actually compresses (trivially short
        // paths can cost more coded than flat).
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1), (2, 4), (3, 5), (5, 1), (5, 4)])
            .unwrap();
        let csr = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let arena_cfg = ServeConfig { walks: 10_000, seed: 9, ..Default::default() };
        let coded_cfg = ServeConfig { front_coded_cache: true, ..arena_cfg.clone() };
        let mut arena = SessionContext::new(&csr, arena_cfg);
        let mut coded = SessionContext::new(&csr, coded_cfg);
        for (alpha, budget) in [(0.4, 10_000), (0.4, 10_000), (0.7, 10_000), (0.3, 4_000)] {
            let a = arena.query(&q(alpha, budget)).unwrap();
            let c = coded.query(&q(alpha, budget)).unwrap();
            assert_eq!(a.cache_hit, c.cache_hit);
            assert_equivalent(&a, &c);
        }
        assert_eq!(arena.stats().hits, coded.stats().hits);
        assert!(
            coded.resident_bytes() < arena.resident_bytes(),
            "front-coded entries must charge fewer bytes ({} vs {})",
            coded.resident_bytes(),
            arena.resident_bytes()
        );
    }

    fn campaign(s: usize, targets: &[usize], budget: usize) -> CampaignQuery {
        CampaignQuery {
            s: NodeId::new(s),
            targets: targets.iter().map(|&t| NodeId::new(t)).collect(),
            alpha: 0.5,
            budget,
        }
    }

    #[test]
    fn campaign_warms_and_is_warmed_by_single_queries() {
        // The cache-sharing contract, counter-verified in both
        // directions: a single query warms its pair's pool for a later
        // campaign, and a campaign's pools serve later single queries.
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 8_000, seed: 11, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg);
        // 1) Single query (0,1) at the ceiling: cold miss.
        let single = ctx.query(&q(0.5, 8_000)).unwrap();
        assert!(!single.cache_hit);
        // 2) Campaign over {1, 7}: target 1 hits the query's pool,
        //    target 7 misses and is sampled.
        let answer = ctx.campaign(&campaign(0, &[1, 7], 3)).unwrap();
        assert_eq!(answer.hits, 1);
        assert!(answer.targets[0].cache_hit && !answer.targets[1].cache_hit);
        let stats = ctx.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        // 3) A later single query on (0,7) hits the campaign's pool.
        let after = ctx
            .query(&Query { s: NodeId::new(0), t: NodeId::new(7), alpha: 0.3, budget: 8_000 })
            .unwrap();
        assert!(after.cache_hit, "campaign pools must serve single queries");
    }

    #[test]
    fn campaign_answers_are_target_order_invariant() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 8_000, seed: 7, ..Default::default() };
        let mut forward = SessionContext::new(&csr, cfg.clone());
        let mut backward = SessionContext::new(&csr, cfg);
        let a = forward.campaign(&campaign(0, &[1, 7], 4)).unwrap();
        let b = backward.campaign(&campaign(0, &[7, 1], 4)).unwrap();
        assert_eq!(a, b);
        assert!(a.invitations.len() <= 4);
        assert!((a.objective - a.targets.iter().map(|t| t.estimate).sum::<f64>()).abs() < 1e-12);
        // The returned allocation is never worse than either
        // independent-split arm, and the winning arm's objective is the
        // one reported.
        assert!(a.objective >= a.arm_objectives[1] && a.objective >= a.arm_objectives[2]);
        let by_name = match a.arm {
            "joint" => a.arm_objectives[0],
            "equal_split" => a.arm_objectives[1],
            _ => a.arm_objectives[2],
        };
        assert_eq!(a.objective, by_name);
    }

    #[test]
    fn campaign_rejects_structurally_without_killing_state() {
        let csr = routes_csr();
        let mut ctx =
            SessionContext::new(&csr, ServeConfig { walks: 4_000, seed: 3, ..Default::default() });
        let err = ctx.campaign(&campaign(0, &[], 3)).unwrap_err();
        assert!(matches!(err, ServeError::InvalidQuery(QueryRejection::NoTargets)));
        let err = ctx.campaign(&campaign(0, &[1, 7, 1], 3)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidQuery(QueryRejection::DuplicateTarget { target: 1 })
        ));
        assert_eq!(err.to_string(), "invalid query: duplicate campaign target 1");
        let err = ctx.campaign(&campaign(0, &[0, 1], 3)).unwrap_err();
        assert!(matches!(err, ServeError::InvalidQuery(QueryRejection::SourceIsTarget)));
        assert_eq!(ctx.stats(), CacheStats::default(), "rejections must not touch the cache");
        // The session keeps serving afterwards.
        assert!(ctx.campaign(&campaign(0, &[1, 7], 3)).is_ok());
    }

    #[test]
    fn campaign_unreachable_target_is_structured_and_keeps_live_pools() {
        // Island graph: node 3 is unreachable from N(0).
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 1), (4, 3)]).unwrap();
        let csr = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let mut ctx =
            SessionContext::new(&csr, ServeConfig { walks: 2_000, seed: 5, ..Default::default() });
        let err = ctx.campaign(&campaign(0, &[1, 3], 2)).unwrap_err();
        assert!(matches!(err, ServeError::CampaignUnreachable { target: 3, .. }));
        assert_eq!(err.code(), "unreachable");
        // Target 1's pool (sampled before the failure) stays cached and
        // serves the retry without the dead target.
        let retry = ctx.campaign(&campaign(0, &[1], 2)).unwrap();
        assert_eq!(retry.hits, 1);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let csr = routes_csr();
        let cfg = ServeConfig { walks: 10_000, seed: 9, ..Default::default() };
        let mut bare = SessionContext::new(&csr, cfg.clone());
        let mut planned = SessionContext::new(&csr, cfg);
        planned.set_fault_plan(FaultPlan::empty());
        for alpha in [0.3, 0.5, 0.3] {
            let a = bare.query(&q(alpha, 10_000)).unwrap();
            let b = planned.query(&q(alpha, 10_000)).unwrap();
            assert_eq!(a.cache_hit, b.cache_hit);
            assert_equivalent(&a, &b);
        }
        assert_eq!(bare.stats(), planned.stats());
        assert_eq!(bare.session_stats(), planned.session_stats());
    }
}
