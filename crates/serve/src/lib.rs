//! Amortized query serving for active friending.
//!
//! Everything below `raf-serve` in the stack is one-shot: load a graph,
//! sample a realization pool, solve the cover, exit. The paper's setting
//! is a *service*, though — many `(source, target, α, budget)` friending
//! queries against one social-graph snapshot — and the expensive phase
//! (sampling the backward-walk pool `B_l`) depends only on the pair and
//! the walk count, **not** on `α` or on how the budget clamps. This crate
//! supplies the amortization layer:
//!
//! * [`SessionContext`] holds a (possibly relabeled) [`CsrGraph`]
//!   resident and answers [`Query`] batches;
//! * [`PoolCache`] keeps sampled [`PathPool`]s — plus the
//!   [`CoverInstance`](raf_cover::CoverInstance) built from each, which
//!   is equally `α`-independent — behind an LRU with a byte-size budget,
//!   with hit/miss/eviction counters;
//! * [`protocol`] is the line-oriented request/response format behind
//!   `raf serve` (batch request files or stdin/stdout, no network).
//!
//! On top of the happy path sits a robustness layer: per-query
//! [`DeadlinePolicy`] work budgets that *degrade* answers (partial pool,
//! `degraded` marker) instead of failing them, [`AdmissionPolicy`]
//! caps that shed over-limit queries with a retry hint
//! ([`ServeError::Overloaded`]), panic isolation that contains any
//! query-pipeline panic to an [`ServeError::Internal`] response, cache
//! integrity fingerprints that evict corrupt entries transparently, and
//! a deterministic [`FaultPlan`] harness (`raf serve --fault-plan`) that
//! drives every one of those failure paths reproducibly in tests. With
//! an empty plan and default policies, all of it is invisible: output is
//! bit-identical to a context without the machinery.
//!
//! A query whose `(source, target, effective walk count)` key is cached
//! re-solves only the `α`-dependent cover phase on the resident
//! instance; a true key miss resamples. Answers are a pure function of
//! `(graph, config, query)` — the cache is memoization, never
//! approximation — so a cache-hit answer is bit-identical to a cold
//! [`one_shot`] run with the same seed (property-tested in
//! `tests/serving_equivalence.rs` at the workspace root).
//!
//! ```
//! use raf_graph::{GraphBuilder, NodeId, WeightScheme};
//! use raf_serve::{Query, ServeConfig, SessionContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1)])?;
//! let csr = b.build(WeightScheme::UniformByDegree)?.to_csr();
//! let mut ctx = SessionContext::new(&csr, ServeConfig::default());
//! let q = Query { s: NodeId::new(0), t: NodeId::new(1), alpha: 0.5, budget: 20_000 };
//! let cold = ctx.query(&q)?;
//! assert!(!cold.cache_hit);
//! // Same pair, different alpha: the pool is reused, only the cover
//! // phase re-runs.
//! let warm = ctx.query(&Query { alpha: 0.3, ..q })?;
//! assert!(warm.cache_hit);
//! assert_eq!(ctx.stats().hits, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod context;
mod deadline;
mod fault;
pub mod protocol;

pub use cache::{CacheStats, CachedPool, PoolCache, PoolKey};
pub use context::{
    one_shot, CampaignAnswer, CampaignQuery, CampaignTargetAnswer, DeltaOutcome, Query,
    QueryAnswer, QueryRejection, ServeConfig, ServeError, SessionContext, SessionStats,
};
pub use deadline::{AdmissionLedger, AdmissionPolicy, DeadlinePolicy, ShedReason};
pub use fault::{FaultKind, FaultPlan, FaultSite};
