//! The `raf serve` line protocol: whitespace-separated request lines in,
//! one `ok`/`err` response line per request out. No network, no framing
//! beyond newlines — the format works identically for a batch request
//! file and an interactive stdin session.
//!
//! Request: `s t alpha [budget]` (ids in original space; `budget`
//! defaults to the context's walk ceiling). Blank lines and `#` comments
//! are skipped. Two more verbs dispatch on the first field: the
//! multi-target verb `campaign s t1,t2,... alpha budget` (one shared
//! invitation budget allocated across up to [`MAX_CAMPAIGN_TARGETS`]
//! targets, answered with an `ok campaign …` line), and — on a session
//! serving a dynamic graph — the churn verb `delta <spec>`, where
//! `<spec>` is the edge-delta grammar (`+u:v` add, `-u:v` remove,
//! comma- or whitespace-separated) — parsed by [`parse_line`], answered
//! with an `ok delta …` summary line.
//!
//! Response: `ok s=<s> t=<t> alpha=<α> hit=<0|1> walks=<l> size=<|I*|>
//! covered=<c> p=<p> pmax=<estimate> inv=<id,id,...>` on success — with
//! ` degraded=1` appended when the answer came from a deadline-truncated
//! partial pool (`walks` then reports the walks actually sampled) — and
//! `err s=<s> t=<t>: <message>` on a per-query failure.
//!
//! Parsing is total: any byte sequence — non-UTF-8, NUL bytes, absurd
//! field counts, kilobyte-long numbers — produces either a request or a
//! deterministic error string, never a panic and never a dead session
//! (fuzzed in `crates/serve/tests/proptest_protocol.rs`).

use crate::context::{CampaignAnswer, CampaignQuery, DeltaOutcome, Query, QueryAnswer, ServeError};
use raf_graph::{EdgeDelta, NodeId};

/// Longest field rendering quoted back in a parse error: a hostile
/// kilobyte-long "number" gets truncated instead of echoed in full, so
/// error lines stay bounded no matter the input.
const QUOTE_CAP: usize = 32;

fn bounded(text: &str, cap: usize) -> String {
    if text.chars().count() <= cap {
        text.to_string()
    } else {
        let head: String = text.chars().take(cap).collect();
        format!("{head}… ({} bytes)", text.len())
    }
}

fn snippet(field: &str) -> String {
    bounded(field, QUOTE_CAP)
}

/// Cap for a whole echoed delta-spec error: the underlying parser quotes
/// offending tokens verbatim, so the bound sits above the message, not
/// the field.
const DELTA_ERR_CAP: usize = 160;

/// Parses a node id field. Ids must fit the graph layer's u32 id space
/// *before* `NodeId` construction: `NodeId::new` debug-asserts the
/// bound, so an oversized id would panic a debug serve session — and
/// silently truncate (aliasing a small id) in release.
fn parse_id(raw: &str, what: &str) -> Result<usize, String> {
    let id: usize = raw.parse().map_err(|_| format!("bad {what} id {:?}", snippet(raw)))?;
    if id > u32::MAX as usize {
        return Err(format!("{what} id {id} overflows the 32-bit id space"));
    }
    Ok(id)
}

/// Parses one request line. Returns `Ok(None)` for blank lines and `#`
/// comments (skipped, no response emitted).
///
/// # Errors
///
/// A human-readable description of the malformed line, deterministic in
/// the input bytes and bounded in length.
pub fn parse_request(line: &str, default_budget: u64) -> Result<Option<Query>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let (s_raw, t_raw, alpha_raw) = match (fields.next(), fields.next(), fields.next()) {
        (Some(s), Some(t), Some(a)) => (s, t, a),
        _ => {
            let n = line.split_whitespace().count();
            return Err(format!("expected `s t alpha [budget]`, got {n} field(s)"));
        }
    };
    let budget_raw = fields.next();
    if fields.next().is_some() {
        let n = line.split_whitespace().count();
        return Err(format!("expected `s t alpha [budget]`, got {n} field(s)"));
    }
    let s = parse_id(s_raw, "source")?;
    let t = parse_id(t_raw, "target")?;
    let alpha: f64 =
        alpha_raw.parse().map_err(|_| format!("bad alpha {:?}", snippet(alpha_raw)))?;
    let budget: u64 = match budget_raw {
        None => default_budget,
        Some(raw) => raw.parse().map_err(|_| format!("bad budget {:?}", snippet(raw)))?,
    };
    Ok(Some(Query { s: NodeId::new(s), t: NodeId::new(t), alpha, budget }))
}

/// Parses one raw request line that may not be valid UTF-8 — the entry
/// point `raf serve` reads stdin and batch files through, so a client
/// writing garbage bytes gets an `err` response instead of killing the
/// session. Invalid sequences decode lossily (U+FFFD), which can never
/// form a digit, so they surface as ordinary deterministic parse errors.
///
/// # Errors
///
/// Same contract as [`parse_request`].
pub fn parse_request_bytes(line: &[u8], default_budget: u64) -> Result<Option<Query>, String> {
    parse_request(&String::from_utf8_lossy(line), default_budget)
}

/// One parsed request line: a friending query, a multi-target campaign,
/// or the churn verb applying an edge delta to the session's resident
/// graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `s t alpha [budget]` — answer a friending query.
    Query(Query),
    /// `campaign s t1,t2,... alpha budget` — allocate one shared
    /// invitation budget across several targets.
    Campaign(CampaignQuery),
    /// `delta <spec>` — apply edge churn before serving further queries.
    Delta(EdgeDelta),
}

/// Most targets one `campaign` line may list: keeps a hostile request
/// from turning one line into an unbounded sampling fan-out (each
/// uncached target costs a full pool).
pub const MAX_CAMPAIGN_TARGETS: usize = 16;

/// Parses the `campaign s t1,t2,... alpha budget` verb (the line
/// starts with the verb itself when this is called).
fn parse_campaign(line: &str) -> Result<CampaignQuery, String> {
    let mut fields = line.split_whitespace();
    fields.next(); // the verb
    let (s_raw, targets_raw, alpha_raw, budget_raw) =
        match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(t), Some(a), Some(b)) => (s, t, a, b),
            _ => {
                let n = line.split_whitespace().count() - 1;
                return Err(format!(
                    "expected `campaign s t1,t2,... alpha budget`, got {n} field(s)"
                ));
            }
        };
    if fields.next().is_some() {
        let n = line.split_whitespace().count() - 1;
        return Err(format!("expected `campaign s t1,t2,... alpha budget`, got {n} field(s)"));
    }
    let s = parse_id(s_raw, "source")?;
    let raw_targets: Vec<&str> = targets_raw.split(',').collect();
    if raw_targets.len() > MAX_CAMPAIGN_TARGETS {
        return Err(format!(
            "campaign lists {} targets, cap is {MAX_CAMPAIGN_TARGETS}",
            raw_targets.len()
        ));
    }
    let mut targets = Vec::with_capacity(raw_targets.len());
    for raw in raw_targets {
        targets.push(NodeId::new(parse_id(raw, "target")?));
    }
    let alpha: f64 =
        alpha_raw.parse().map_err(|_| format!("bad alpha {:?}", snippet(alpha_raw)))?;
    let budget: usize =
        budget_raw.parse().map_err(|_| format!("bad budget {:?}", snippet(budget_raw)))?;
    Ok(CampaignQuery { s: NodeId::new(s), targets, alpha, budget })
}

/// Parses one request line of the full (query + churn) protocol.
/// Query lines parse exactly as [`parse_request`]; lines whose first
/// field is the verb `delta` parse the rest as an edge-delta spec.
/// Returns `Ok(None)` for blank lines and `#` comments.
///
/// # Errors
///
/// Same contract as [`parse_request`]: deterministic, bounded-length
/// descriptions — hostile kilobyte tokens inside a delta spec are
/// truncated before they are echoed.
pub fn parse_line(line: &str, default_budget: u64) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    match fields.next() {
        Some("delta") => {
            let spec = line["delta".len()..].trim();
            if spec.is_empty() {
                return Err("expected `delta <+u:v|-u:v>[,...]`, got no operations".to_string());
            }
            let delta = EdgeDelta::parse(spec)
                .map_err(|e| format!("bad delta: {}", bounded(&e.to_string(), DELTA_ERR_CAP)))?;
            Ok(Some(Request::Delta(delta)))
        }
        Some("campaign") => Ok(Some(Request::Campaign(parse_campaign(line)?))),
        _ => Ok(parse_request(line, default_budget)?.map(Request::Query)),
    }
}

/// Byte-level entry point for [`parse_line`], with the same lossy-UTF-8
/// tolerance as [`parse_request_bytes`].
///
/// # Errors
///
/// Same contract as [`parse_line`].
pub fn parse_line_bytes(line: &[u8], default_budget: u64) -> Result<Option<Request>, String> {
    parse_line(&String::from_utf8_lossy(line), default_budget)
}

/// Renders a successful answer as one `ok` response line. Degraded
/// answers (deadline-truncated pool) carry a trailing ` degraded=1`
/// marker; full answers render byte-identically to a protocol without
/// the extension.
pub fn format_answer(query: &Query, answer: &QueryAnswer) -> String {
    let inv: Vec<String> = answer.invitations.iter().map(|v| v.index().to_string()).collect();
    let mut line = format!(
        "ok s={} t={} alpha={} hit={} walks={} size={} covered={} p={} pmax={:.6} inv={}",
        query.s.index(),
        query.t.index(),
        query.alpha,
        u8::from(answer.cache_hit),
        answer.walks,
        answer.invitations.len(),
        answer.covered,
        answer.cover_p,
        answer.pmax_estimate,
        inv.join(","),
    );
    if answer.degraded {
        line.push_str(" degraded=1");
    }
    line
}

/// Renders a per-query failure as one `err` response line.
pub fn format_error(query: &Query, error: &ServeError) -> String {
    format!("err s={} t={}: {error}", query.s.index(), query.t.index())
}

/// Renders a successful campaign as one `ok campaign` response line:
/// the shared invitation set, the winning allocation arm, and a
/// `per=` list of `target:covered:estimate` triples in canonical
/// (ascending target id) order.
pub fn format_campaign_answer(query: &CampaignQuery, answer: &CampaignAnswer) -> String {
    let per: Vec<String> = answer
        .targets
        .iter()
        .map(|t| format!("{}:{}:{:.6}", t.target.index(), t.covered, t.estimate))
        .collect();
    let inv: Vec<String> = answer.invitations.iter().map(|v| v.index().to_string()).collect();
    format!(
        "ok campaign s={} k={} alpha={} budget={} hits={} walks={} size={} objective={:.6} \
         arm={} per={} inv={}",
        query.s.index(),
        answer.targets.len(),
        query.alpha,
        query.budget,
        answer.hits,
        answer.walks,
        answer.invitations.len(),
        answer.objective,
        answer.arm,
        per.join(","),
        inv.join(","),
    )
}

/// Renders a failed campaign as one `err campaign` response line.
pub fn format_campaign_error(query: &CampaignQuery, error: &ServeError) -> String {
    format!("err campaign s={}: {error}", query.s.index())
}

/// Renders the outcome of an applied delta as one `ok delta` response
/// line: the effective graph change and the fate of every resident pool
/// (repaired in place / untouched / flushed), with the re-sampled walk
/// mass — the number a churn client watches to confirm repair cost
/// scaled with the touch set and not the graph.
pub fn format_delta_outcome(outcome: &DeltaOutcome) -> String {
    let mut line = format!(
        "ok delta added={} removed={} touched={} repaired={} untouched={} flushed={} resampled={}",
        outcome.added,
        outcome.removed,
        outcome.touched_nodes,
        outcome.repaired,
        outcome.untouched,
        outcome.flushed,
        outcome.resampled_walks,
    );
    if outcome.noop {
        line.push_str(" noop=1");
    }
    line
}

/// Renders a failed delta application as one `err delta` response line.
pub fn format_delta_error(error: &ServeError) -> String {
    format!("err delta: {error}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests_with_and_without_budget() {
        let q = parse_request("3 99 0.3 20000", 50_000).unwrap().unwrap();
        assert_eq!((q.s.index(), q.t.index()), (3, 99));
        assert_eq!(q.alpha, 0.3);
        assert_eq!(q.budget, 20_000);
        let q = parse_request("  3\t99  0.3 ", 50_000).unwrap().unwrap();
        assert_eq!(q.budget, 50_000, "budget defaults to the context ceiling");
    }

    #[test]
    fn skips_blanks_and_comments() {
        assert_eq!(parse_request("", 1).unwrap(), None);
        assert_eq!(parse_request("   ", 1).unwrap(), None);
        assert_eq!(parse_request("# s t alpha", 1).unwrap(), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("3 99", 1).unwrap_err().contains("field"));
        assert!(parse_request("3 99 0.3 20000 extra", 1).is_err());
        assert!(parse_request("x 99 0.3", 1).unwrap_err().contains("source"));
        assert!(parse_request("3 y 0.3", 1).unwrap_err().contains("target"));
        assert!(parse_request("3 99 zz", 1).unwrap_err().contains("alpha"));
        assert!(parse_request("3 99 0.3 -1", 1).unwrap_err().contains("budget"));
    }

    #[test]
    fn byte_lines_never_kill_the_parser() {
        // Valid UTF-8 passes through unchanged.
        let q = parse_request_bytes(b"3 99 0.3 20000", 1).unwrap().unwrap();
        assert_eq!((q.s.index(), q.t.index()), (3, 99));
        // Invalid UTF-8 decodes lossily and fails as a plain parse error,
        // deterministically.
        let a = parse_request_bytes(b"\xff\xfe 99 0.3", 1).unwrap_err();
        let b = parse_request_bytes(b"\xff\xfe 99 0.3", 1).unwrap_err();
        assert_eq!(a, b);
        assert!(a.contains("source"), "{a}");
        // NUL bytes are field content, not separators.
        assert!(parse_request_bytes(b"3\x0099 0.3", 1).is_err());
        // Non-UTF-8 comments are still comments.
        assert_eq!(parse_request_bytes(b"# \xff\xfe", 1).unwrap(), None);
    }

    #[test]
    fn ids_beyond_u32_are_rejected_not_truncated() {
        // Regression: ids over u32::MAX used to reach NodeId::new, which
        // debug-asserts (killing a debug serve session) and truncates in
        // release — so id 2^32 would silently alias node 0, pool key and
        // cache entry included. The parser must reject them first.
        let over = (1u64 << 32).to_string();
        let err = parse_request(&format!("{over} 1 0.3"), 1).unwrap_err();
        assert_eq!(err, "source id 4294967296 overflows the 32-bit id space");
        let err = parse_request(&format!("1 {over} 0.3"), 1).unwrap_err();
        assert!(err.contains("target id"), "{err}");
        // The largest representable id still parses.
        let q = parse_request(&format!("{} 1 0.3", u32::MAX), 1).unwrap().unwrap();
        assert_eq!(q.s.index(), u32::MAX as usize);
    }

    #[test]
    fn hostile_fields_are_quoted_bounded() {
        let huge = format!("{} 99 0.3", "9".repeat(4_096));
        let err = parse_request(&huge, 1).unwrap_err();
        assert!(err.len() < 128, "error must stay bounded, got {} bytes", err.len());
        assert!(err.contains("(4096 bytes)"), "{err}");
        // Short fields keep the legacy full quoting.
        assert_eq!(parse_request("x 99 0.3", 1).unwrap_err(), "bad source id \"x\"");
    }

    #[test]
    fn delta_lines_parse_through_the_full_protocol() {
        // Query lines come through unchanged.
        match parse_line("3 99 0.3 20000", 1).unwrap().unwrap() {
            Request::Query(q) => assert_eq!((q.s.index(), q.t.index()), (3, 99)),
            other => panic!("expected a query, got {other:?}"),
        }
        assert_eq!(parse_line("# comment", 1).unwrap(), None);
        assert_eq!(parse_line("", 1).unwrap(), None);
        // The churn verb parses the rest of the line as a delta spec.
        match parse_line("delta +0:3,-1:2", 1).unwrap().unwrap() {
            Request::Delta(d) => assert_eq!(d.spec(), "+0:3,-1:2"),
            other => panic!("expected a delta, got {other:?}"),
        }
        // Whitespace-separated ops work too.
        match parse_line("delta  +0:3  -1:2 ", 1).unwrap().unwrap() {
            Request::Delta(d) => assert_eq!(d.len(), 2),
            other => panic!("expected a delta, got {other:?}"),
        }
        // Byte-level entry point shares the contract.
        assert!(matches!(parse_line_bytes(b"delta +0:1", 1).unwrap().unwrap(), Request::Delta(_)));
    }

    #[test]
    fn malformed_delta_lines_error_deterministically_and_bounded() {
        assert!(parse_line("delta", 1).unwrap_err().contains("no operations"));
        assert!(parse_line("delta  ", 1).unwrap_err().contains("no operations"));
        let err = parse_line("delta ~0:1", 1).unwrap_err();
        assert!(err.starts_with("bad delta: "), "{err}");
        // Self-loops are rejected at parse time, before any application.
        assert!(parse_line("delta +5:5", 1).unwrap_err().contains("self-loop"));
        // A field that merely *starts* with the verb is a normal
        // (malformed) query, not a delta.
        assert!(parse_line("delta7 1 0.3", 1).unwrap_err().contains("source"));
        // Hostile long specs stay bounded in the echo.
        let huge = format!("delta +0:{}", "9".repeat(4_096));
        let err = parse_line(&huge, 1).unwrap_err();
        assert!(err.len() < 256, "error must stay bounded, got {} bytes", err.len());
        // Determinism.
        assert_eq!(parse_line(&huge, 1).unwrap_err(), err);
    }

    #[test]
    fn campaign_lines_parse_through_the_full_protocol() {
        match parse_line("campaign 0 1,7,3 0.5 4", 1).unwrap().unwrap() {
            Request::Campaign(c) => {
                assert_eq!(c.s.index(), 0);
                assert_eq!(c.targets.iter().map(|t| t.index()).collect::<Vec<_>>(), [1, 7, 3]);
                assert_eq!(c.alpha, 0.5);
                assert_eq!(c.budget, 4);
            }
            other => panic!("expected a campaign, got {other:?}"),
        }
        // A single target is legal (the k=1 degenerate case).
        assert!(matches!(
            parse_line("campaign 0 1 0.5 4", 1).unwrap().unwrap(),
            Request::Campaign(c) if c.targets.len() == 1
        ));
        // Byte-level entry point shares the contract.
        assert!(matches!(
            parse_line_bytes(b"campaign 0 1,7 0.5 4", 1).unwrap().unwrap(),
            Request::Campaign(_)
        ));
        // A field merely *starting* with the verb is a normal query.
        assert!(parse_line("campaign7 1 0.3", 1).unwrap_err().contains("source"));
    }

    #[test]
    fn malformed_campaign_lines_error_deterministically_and_bounded() {
        assert!(parse_line("campaign", 1).unwrap_err().contains("0 field(s)"));
        assert!(parse_line("campaign 0 1,2 0.5", 1).unwrap_err().contains("3 field(s)"));
        assert!(parse_line("campaign 0 1,2 0.5 4 extra", 1).unwrap_err().contains("5 field(s)"));
        assert!(parse_line("campaign x 1 0.5 4", 1).unwrap_err().contains("source"));
        assert!(parse_line("campaign 0 1,,2 0.5 4", 1).unwrap_err().contains("target"));
        assert!(parse_line("campaign 0 1,y 0.5 4", 1).unwrap_err().contains("target"));
        assert!(parse_line("campaign 0 1,2 zz 4", 1).unwrap_err().contains("alpha"));
        assert!(parse_line("campaign 0 1,2 0.5 -4", 1).unwrap_err().contains("budget"));
        // Oversized ids are rejected before NodeId construction.
        let over = (1u64 << 32).to_string();
        let err = parse_line(&format!("campaign 0 {over} 0.5 4"), 1).unwrap_err();
        assert!(err.contains("32-bit"), "{err}");
        // The target-count cap bounds the sampling fan-out of one line.
        let many: Vec<String> = (1..=MAX_CAMPAIGN_TARGETS + 1).map(|t| t.to_string()).collect();
        let err = parse_line(&format!("campaign 0 {} 0.5 4", many.join(",")), 1).unwrap_err();
        assert!(err.contains("cap is 16"), "{err}");
        let at_cap: Vec<String> = (1..=MAX_CAMPAIGN_TARGETS).map(|t| t.to_string()).collect();
        assert!(parse_line(&format!("campaign 0 {} 0.5 4", at_cap.join(",")), 1).is_ok());
        // Hostile long fields stay bounded in the echo.
        let huge = format!("campaign 0 {} 0.5 4", "9".repeat(4_096));
        let err = parse_line(&huge, 1).unwrap_err();
        assert!(err.len() < 128, "error must stay bounded, got {} bytes", err.len());
        assert_eq!(parse_line(&huge, 1).unwrap_err(), err);
    }

    #[test]
    fn campaign_responses_format_one_line_summaries() {
        use crate::{ServeConfig, SessionContext};
        use raf_graph::{GraphBuilder, WeightScheme};
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 1), (0, 6), (6, 7), (7, 1)])
            .unwrap();
        let csr = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let cfg = ServeConfig { walks: 4_000, seed: 7, ..Default::default() };
        let mut ctx = SessionContext::new(&csr, cfg);
        let request = match parse_line("campaign 0 7,1 0.5 4", 4_000).unwrap().unwrap() {
            Request::Campaign(c) => c,
            other => panic!("expected a campaign, got {other:?}"),
        };
        let answer = ctx.campaign(&request).unwrap();
        let line = format_campaign_answer(&request, &answer);
        assert!(
            line.starts_with("ok campaign s=0 k=2 alpha=0.5 budget=4 hits=0 walks=4000 "),
            "{line}"
        );
        assert!(line.contains(" arm="), "{line}");
        // Per-target triples render in canonical ascending-id order even
        // though the request listed 7 first.
        let per = line.split("per=").nth(1).unwrap().split(' ').next().unwrap();
        assert!(per.starts_with("1:"), "{per}");
        let err = ctx.campaign(&CampaignQuery { targets: vec![], ..request.clone() }).unwrap_err();
        assert_eq!(
            format_campaign_error(&request, &err),
            "err campaign s=0: invalid query: campaign lists no targets"
        );
    }

    #[test]
    fn delta_outcomes_format_one_line_summaries() {
        let outcome = DeltaOutcome {
            added: 2,
            removed: 1,
            touched_nodes: 5,
            repaired: 3,
            untouched: 1,
            flushed: 1,
            resampled_walks: 1_234,
            noop: false,
        };
        assert_eq!(
            format_delta_outcome(&outcome),
            "ok delta added=2 removed=1 touched=5 repaired=3 untouched=1 flushed=1 resampled=1234"
        );
        let noop = DeltaOutcome {
            added: 0,
            removed: 0,
            touched_nodes: 0,
            repaired: 0,
            untouched: 0,
            flushed: 0,
            resampled_walks: 0,
            noop: true,
        };
        assert!(format_delta_outcome(&noop).ends_with(" noop=1"));
        let err =
            ServeError::Delta(raf_graph::GraphError::NodeOutOfRange { node: 999, node_count: 8 });
        assert_eq!(
            format_delta_error(&err),
            "err delta: delta rejected: node 999 out of range for graph with 8 nodes"
        );
    }

    #[test]
    fn degraded_marker_appears_only_when_degraded() {
        use crate::{DeadlinePolicy, ServeConfig, SessionContext};
        use raf_graph::{GraphBuilder, WeightScheme};
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1)]).unwrap();
        let csr = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let q = parse_request("0 1 0.5 10000", 1).unwrap().unwrap();
        let full = SessionContext::new(&csr, ServeConfig::default()).query(&q).unwrap();
        assert!(!format_answer(&q, &full).contains("degraded"));
        let limited = ServeConfig {
            deadline: DeadlinePolicy { work_budget: Some(2_000), wall_clock_ms: None },
            ..Default::default()
        };
        let partial = SessionContext::new(&csr, limited).query(&q).unwrap();
        assert!(partial.degraded);
        let line = format_answer(&q, &partial);
        assert!(line.ends_with(" degraded=1"), "{line}");
        assert!(line.contains(&format!("walks={}", partial.walks)));
    }

    #[test]
    fn responses_round_trip_through_the_format() {
        use crate::{ServeConfig, SessionContext};
        use raf_graph::{GraphBuilder, WeightScheme};
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1)]).unwrap();
        let csr = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let mut ctx = SessionContext::new(&csr, ServeConfig::default());
        let q = parse_request("0 1 0.5 10000", 50_000).unwrap().unwrap();
        let a = ctx.query(&q).unwrap();
        let line = format_answer(&q, &a);
        assert!(line.starts_with("ok s=0 t=1 alpha=0.5 hit=0 walks=10000 "));
        assert!(line.contains(&format!("size={}", a.invitations.len())));
        assert!(line.contains("inv="));
        // The target is always invited, so its id appears in the list.
        assert!(line.split("inv=").nth(1).unwrap().split(',').any(|v| v == "1"));
        let err = ctx.query(&Query { budget: 0, ..q }).unwrap_err();
        let line = format_error(&q, &err);
        assert!(line.starts_with("err s=0 t=1: "));
        assert!(line.contains("budget"));
    }
}
