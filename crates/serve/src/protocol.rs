//! The `raf serve` line protocol: whitespace-separated request lines in,
//! one `ok`/`err` response line per request out. No network, no framing
//! beyond newlines — the format works identically for a batch request
//! file and an interactive stdin session.
//!
//! Request: `s t alpha [budget]` (ids in original space; `budget`
//! defaults to the context's walk ceiling). Blank lines and `#` comments
//! are skipped.
//!
//! Response: `ok s=<s> t=<t> alpha=<α> hit=<0|1> walks=<l> size=<|I*|>
//! covered=<c> p=<p> pmax=<estimate> inv=<id,id,...>` on success,
//! `err s=<s> t=<t>: <message>` on a per-query failure.

use crate::context::{Query, QueryAnswer, ServeError};
use raf_graph::NodeId;

/// Parses one request line. Returns `Ok(None)` for blank lines and `#`
/// comments (skipped, no response emitted).
///
/// # Errors
///
/// A human-readable description of the malformed line.
pub fn parse_request(line: &str, default_budget: u64) -> Result<Option<Query>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    if !(3..=4).contains(&fields.len()) {
        return Err(format!("expected `s t alpha [budget]`, got {} field(s)", fields.len()));
    }
    let s: usize = fields[0].parse().map_err(|_| format!("bad source id {:?}", fields[0]))?;
    let t: usize = fields[1].parse().map_err(|_| format!("bad target id {:?}", fields[1]))?;
    let alpha: f64 = fields[2].parse().map_err(|_| format!("bad alpha {:?}", fields[2]))?;
    let budget: u64 = match fields.get(3) {
        None => default_budget,
        Some(raw) => raw.parse().map_err(|_| format!("bad budget {raw:?}"))?,
    };
    Ok(Some(Query { s: NodeId::new(s), t: NodeId::new(t), alpha, budget }))
}

/// Renders a successful answer as one `ok` response line.
pub fn format_answer(query: &Query, answer: &QueryAnswer) -> String {
    let inv: Vec<String> = answer.invitations.iter().map(|v| v.index().to_string()).collect();
    format!(
        "ok s={} t={} alpha={} hit={} walks={} size={} covered={} p={} pmax={:.6} inv={}",
        query.s.index(),
        query.t.index(),
        query.alpha,
        u8::from(answer.cache_hit),
        answer.walks,
        answer.invitations.len(),
        answer.covered,
        answer.cover_p,
        answer.pmax_estimate,
        inv.join(","),
    )
}

/// Renders a per-query failure as one `err` response line.
pub fn format_error(query: &Query, error: &ServeError) -> String {
    format!("err s={} t={}: {error}", query.s.index(), query.t.index())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests_with_and_without_budget() {
        let q = parse_request("3 99 0.3 20000", 50_000).unwrap().unwrap();
        assert_eq!((q.s.index(), q.t.index()), (3, 99));
        assert_eq!(q.alpha, 0.3);
        assert_eq!(q.budget, 20_000);
        let q = parse_request("  3\t99  0.3 ", 50_000).unwrap().unwrap();
        assert_eq!(q.budget, 50_000, "budget defaults to the context ceiling");
    }

    #[test]
    fn skips_blanks_and_comments() {
        assert_eq!(parse_request("", 1).unwrap(), None);
        assert_eq!(parse_request("   ", 1).unwrap(), None);
        assert_eq!(parse_request("# s t alpha", 1).unwrap(), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("3 99", 1).unwrap_err().contains("field"));
        assert!(parse_request("3 99 0.3 20000 extra", 1).is_err());
        assert!(parse_request("x 99 0.3", 1).unwrap_err().contains("source"));
        assert!(parse_request("3 y 0.3", 1).unwrap_err().contains("target"));
        assert!(parse_request("3 99 zz", 1).unwrap_err().contains("alpha"));
        assert!(parse_request("3 99 0.3 -1", 1).unwrap_err().contains("budget"));
    }

    #[test]
    fn responses_round_trip_through_the_format() {
        use crate::{ServeConfig, SessionContext};
        use raf_graph::{GraphBuilder, WeightScheme};
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1)]).unwrap();
        let csr = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let mut ctx = SessionContext::new(&csr, ServeConfig::default());
        let q = parse_request("0 1 0.5 10000", 50_000).unwrap().unwrap();
        let a = ctx.query(&q).unwrap();
        let line = format_answer(&q, &a);
        assert!(line.starts_with("ok s=0 t=1 alpha=0.5 hit=0 walks=10000 "));
        assert!(line.contains(&format!("size={}", a.invitations.len())));
        assert!(line.contains("inv="));
        // The target is always invited, so its id appears in the list.
        assert!(line.split("inv=").nth(1).unwrap().split(',').any(|v| v == "1"));
        let err = ctx.query(&Query { budget: 0, ..q }).unwrap_err();
        let line = format_error(&q, &err);
        assert!(line.starts_with("err s=0 t=1: "));
        assert!(line.contains("budget"));
    }
}
