//! Deterministic fault injection for the serving layer.
//!
//! A [`FaultPlan`] is a list of [`FaultSite`]s: *at query N of the
//! session, inject fault K*. Plans are data — parsed from a CLI spec
//! ([`FaultPlan::parse`], behind `raf serve --fault-plan`) or generated
//! from a seed ([`FaultPlan::from_seed`], the property-test driver) —
//! and injection is purely positional: the same plan over the same
//! query stream fires the same faults at the same walks every run, so
//! failure-path tests are as reproducible as the happy path. An empty
//! plan is free: the session is bit-identical to one with no plan at
//! all.
//!
//! The four fault kinds cover the serving layer's failure surfaces:
//! a worker panic mid-sampling ([`FaultKind::PanicAtWalk`], caught and
//! isolated as `err internal`), an allocation-cap breach
//! ([`FaultKind::AllocCap`], the resource-exhaustion path), forced slow
//! sampling ([`FaultKind::SlowBatchMs`], drives the wall-clock deadline
//! path), and cache-entry corruption ([`FaultKind::CorruptCacheEntry`],
//! drives the integrity-check eviction path).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the sampling loop once the walk counter reaches the
    /// given walk (checked at batch boundaries). Exercises panic
    /// isolation: the query must answer `err internal` and leave the
    /// session consistent.
    PanicAtWalk(u64),
    /// Cap the query's pool allocation at the given byte count; a pool
    /// larger than the cap is rejected as resource exhaustion and never
    /// cached.
    AllocCap(usize),
    /// Sleep this many milliseconds at every sampler batch boundary —
    /// forced slow sampling, which drives a wall-clock deadline into its
    /// degraded path.
    SlowBatchMs(u64),
    /// After the query completes and caches its pool, corrupt the cached
    /// entry (flip its integrity checksum). The next lookup must detect
    /// the corruption, evict, and resample.
    CorruptCacheEntry,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::PanicAtWalk(w) => write!(f, "panic:{w}"),
            FaultKind::AllocCap(b) => write!(f, "alloc:{b}"),
            FaultKind::SlowBatchMs(ms) => write!(f, "slow:{ms}"),
            FaultKind::CorruptCacheEntry => write!(f, "corrupt"),
        }
    }
}

/// A fault pinned to a position in the session's query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Zero-based index of the query (in session arrival order,
    /// counting every query — including ones that fail validation).
    pub query: u64,
    /// The fault to inject there.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults over a session's query stream.
///
/// The default plan is empty and injects nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    sites: Vec<FaultSite>,
}

impl FaultPlan {
    /// The empty plan (injects nothing; serving is bit-identical to a
    /// session without a plan).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The scheduled sites, in insertion order.
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// Adds a site to the plan.
    pub fn push(&mut self, site: FaultSite) {
        self.sites.push(site);
    }

    /// The highest query index with a scheduled fault, if any — the
    /// boundary after which the recovery property ("post-fault queries
    /// are bit-identical to a fresh session") is asserted.
    pub fn last_fault_query(&self) -> Option<u64> {
        self.sites.iter().map(|s| s.query).max()
    }

    /// The faults scheduled for one query.
    pub fn for_query(&self, query: u64) -> impl Iterator<Item = FaultKind> + '_ {
        self.sites.iter().filter(move |s| s.query == query).map(|s| s.kind)
    }

    /// Parses the CLI spec: comma-separated `kind@query[:param]` sites.
    ///
    /// * `panic@Q[:W]` — panic during query `Q`'s sampling at walk `W`
    ///   (default 0: the first batch boundary);
    /// * `alloc@Q:BYTES` — cap query `Q`'s pool allocation at `BYTES`;
    /// * `slow@Q[:MS]` — sleep `MS` ms (default 10) per batch boundary
    ///   during query `Q`'s sampling;
    /// * `corrupt@Q` — corrupt the cache entry query `Q` inserts.
    ///
    /// An empty spec (or one of only whitespace) is the empty plan.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed site.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::empty();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind_name, rest) = raw
                .split_once('@')
                .ok_or_else(|| format!("fault site {raw:?}: expected `kind@query[:param]`"))?;
            let (query_raw, param) = match rest.split_once(':') {
                None => (rest, None),
                Some((q, p)) => (q, Some(p)),
            };
            let query: u64 = query_raw
                .parse()
                .map_err(|_| format!("fault site {raw:?}: bad query index {query_raw:?}"))?;
            let parse_param = |default: Option<u64>| -> Result<u64, String> {
                match (param, default) {
                    (Some(p), _) => {
                        p.parse().map_err(|_| format!("fault site {raw:?}: bad parameter {p:?}"))
                    }
                    (None, Some(d)) => Ok(d),
                    (None, None) => Err(format!("fault site {raw:?}: missing parameter")),
                }
            };
            let kind = match kind_name {
                "panic" => FaultKind::PanicAtWalk(parse_param(Some(0))?),
                "alloc" => FaultKind::AllocCap(parse_param(None)? as usize),
                "slow" => FaultKind::SlowBatchMs(parse_param(Some(10))?),
                "corrupt" => {
                    if param.is_some() {
                        return Err(format!("fault site {raw:?}: corrupt takes no parameter"));
                    }
                    FaultKind::CorruptCacheEntry
                }
                other => {
                    return Err(format!(
                        "fault site {raw:?}: unknown kind {other:?} \
                         (expected panic, alloc, slow, or corrupt)"
                    ))
                }
            };
            plan.push(FaultSite { query, kind });
        }
        Ok(plan)
    }

    /// A seed-driven pseudo-random plan over a stream of `queries`
    /// queries: up to `queries` sites (possibly zero) of deterministic
    /// kinds and positions — the generator the recovery property test
    /// fans out over. Excludes [`FaultKind::SlowBatchMs`] (its purpose
    /// is driving the nondeterministic wall-clock path, which a
    /// bit-identity property cannot assert over).
    pub fn from_seed(seed: u64, queries: u64) -> Self {
        let mut plan = FaultPlan::empty();
        if queries == 0 {
            return plan;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = rng.gen_range(0..=queries.min(4));
        for _ in 0..sites {
            let query = rng.gen_range(0..queries);
            let kind = match rng.gen_range(0u8..3) {
                0 => FaultKind::PanicAtWalk(rng.gen_range(0..2_048)),
                1 => FaultKind::AllocCap(rng.gen_range(1..256) as usize),
                _ => FaultKind::CorruptCacheEntry,
            };
            plan.push(FaultSite { query, kind });
        }
        plan
    }

    /// Renders the plan back in [`parse`](Self::parse) syntax.
    pub fn to_spec(&self) -> String {
        self.sites
            .iter()
            .map(|s| match s.kind {
                FaultKind::CorruptCacheEntry => format!("corrupt@{}", s.query),
                FaultKind::PanicAtWalk(w) => format!("panic@{}:{w}", s.query),
                FaultKind::AllocCap(b) => format!("alloc@{}:{b}", s.query),
                FaultKind::SlowBatchMs(ms) => format!("slow@{}:{ms}", s.query),
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse("panic@2:100, alloc@0:4096, slow@3, corrupt@1").unwrap();
        assert_eq!(
            plan.sites(),
            &[
                FaultSite { query: 2, kind: FaultKind::PanicAtWalk(100) },
                FaultSite { query: 0, kind: FaultKind::AllocCap(4096) },
                FaultSite { query: 3, kind: FaultKind::SlowBatchMs(10) },
                FaultSite { query: 1, kind: FaultKind::CorruptCacheEntry },
            ]
        );
        assert_eq!(plan.last_fault_query(), Some(3));
        let panics: Vec<FaultKind> = plan.for_query(2).collect();
        assert_eq!(panics, vec![FaultKind::PanicAtWalk(100)]);
        assert_eq!(plan.for_query(9).count(), 0);
    }

    #[test]
    fn parse_defaults_and_empties() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  , ").unwrap().is_empty());
        let plan = FaultPlan::parse("panic@5").unwrap();
        assert_eq!(plan.sites()[0].kind, FaultKind::PanicAtWalk(0));
        assert_eq!(FaultPlan::empty().last_fault_query(), None);
    }

    #[test]
    fn parse_rejects_malformed_sites() {
        assert!(FaultPlan::parse("panic").unwrap_err().contains("kind@query"));
        assert!(FaultPlan::parse("panic@x").unwrap_err().contains("query index"));
        assert!(FaultPlan::parse("alloc@1").unwrap_err().contains("missing parameter"));
        assert!(FaultPlan::parse("panic@1:zz").unwrap_err().contains("bad parameter"));
        assert!(FaultPlan::parse("corrupt@1:5").unwrap_err().contains("no parameter"));
        assert!(FaultPlan::parse("explode@1").unwrap_err().contains("unknown kind"));
    }

    #[test]
    fn spec_round_trips() {
        let spec = "panic@2:100,alloc@0:4096,slow@3:10,corrupt@1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.to_spec(), spec);
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..50u64 {
            let a = FaultPlan::from_seed(seed, 6);
            let b = FaultPlan::from_seed(seed, 6);
            assert_eq!(a, b, "seed {seed}");
            for site in a.sites() {
                assert!(site.query < 6);
                assert!(!matches!(site.kind, FaultKind::SlowBatchMs(_)));
            }
        }
        assert!(FaultPlan::from_seed(1, 0).is_empty());
        // Some seed produces a non-empty plan (the generator is useful).
        assert!((0..50).any(|s| !FaultPlan::from_seed(s, 6).is_empty()));
    }
}
