//! The byte-budgeted LRU pool cache behind [`crate::SessionContext`].

use raf_cover::CoverInstance;
use raf_model::frontcode::FrontCodedPool;
use raf_model::sampler::PathPool;
use std::collections::HashMap;
use std::sync::Arc;

/// The identity of a cached pool: the pair plus the walk parameters the
/// pool was sampled with. `α` and the raw realization budget are
/// deliberately **absent** — neither changes the sampled walks (the
/// budget only participates through the effective `walks` clamp), which
/// is exactly the reuse the cache exists to exploit. The source is part
/// of the key because backward walks terminate on the source's seed
/// frontier `N(s)`: pools for the same target under different sources
/// are different distributions.
///
/// The master seed and thread count also shape the sampled walk multiset,
/// but they are context-wide constants (fixed in
/// [`crate::ServeConfig`]), so they live in the configuration rather
/// than in every key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// The source (original-space id).
    pub s: u32,
    /// The target (original-space id).
    pub t: u32,
    /// Effective walk count the pool was sampled with.
    pub walks: u64,
}

/// One resident cache entry: the sampled pool and the weighted cover
/// instance built from it. Both are `α`-independent, so a warm query
/// re-runs only the solve. `Arc`-shared so answers can keep reading a
/// pool that eviction has already dropped from the cache.
///
/// Each entry carries an integrity fingerprint of its pool, stamped at
/// construction and re-checked on every cache lookup: an entry whose
/// stored pool no longer matches its fingerprint (the
/// [`CorruptCacheEntry`](crate::FaultKind::CorruptCacheEntry) fault, or
/// a real corruption bug) is evicted and resampled instead of served.
#[derive(Debug, Clone)]
pub struct CachedPool {
    /// The pool, as either the flat arena or its front-coded encoding.
    storage: PoolStorage,
    /// The cover instance over the pool, built once per miss.
    pub cover: Arc<CoverInstance>,
    /// FNV-1a fingerprint of the pool's summary (see
    /// [`fingerprint`](Self::fingerprint)).
    checksum: u64,
}

/// How an entry holds its pool. The arena serves hits zero-copy; the
/// front-coded form charges fewer bytes against the budget and decodes
/// to a bit-identical arena on access (CPU traded for residency —
/// opt-in via `ServeConfig::front_coded_cache`).
#[derive(Debug, Clone)]
enum PoolStorage {
    Arena(Arc<PathPool>),
    FrontCoded {
        coded: Arc<FrontCodedPool>,
        /// The walk tallies the coded form does not store, carried so
        /// decoding reconstitutes the pool exactly.
        total_samples: u64,
        dangling: u64,
        cycles: u64,
    },
}

impl CachedPool {
    /// Builds an entry over a freshly sampled pool/cover pair, stamping
    /// its integrity fingerprint.
    pub fn new(pool: Arc<PathPool>, cover: Arc<CoverInstance>) -> Self {
        let checksum = Self::fingerprint(&pool);
        CachedPool { storage: PoolStorage::Arena(pool), cover, checksum }
    }

    /// Builds an entry that stores the pool front-coded: the fingerprint
    /// is stamped from the arena form, so a later
    /// [`pool`](Self::pool) materialization that fails to reproduce it
    /// bit-for-bit fails [`verify`](Self::verify) like any corruption.
    pub fn new_front_coded(pool: &PathPool, cover: Arc<CoverInstance>) -> Self {
        let checksum = Self::fingerprint(pool);
        CachedPool {
            storage: PoolStorage::FrontCoded {
                coded: Arc::new(FrontCodedPool::from_pool(pool)),
                total_samples: pool.total_samples(),
                dangling: pool.dangling_count(),
                cycles: pool.cycle_count(),
            },
            cover,
            checksum,
        }
    }

    /// The entry's pool in arena form: zero-copy for arena storage, a
    /// decode for front-coded storage (bit-identical to the pool the
    /// entry was built from).
    pub fn pool(&self) -> Arc<PathPool> {
        match &self.storage {
            PoolStorage::Arena(pool) => Arc::clone(pool),
            PoolStorage::FrontCoded { coded, total_samples, dangling, cycles } => {
                Arc::new(coded.to_pool(*total_samples, *dangling, *cycles))
            }
        }
    }

    /// Whether this entry stores its pool front-coded.
    pub fn is_front_coded(&self) -> bool {
        matches!(self.storage, PoolStorage::FrontCoded { .. })
    }

    /// FNV-1a over the pool's summary statistics — cheap enough to run
    /// on every lookup, and any fault that changes what the pool would
    /// answer (walk count, type-1 mass, estimate, arena size) changes at
    /// least one of them.
    fn fingerprint(pool: &PathPool) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let words = [
            pool.total_samples(),
            pool.type1_count() as u64,
            pool.pmax_estimate().to_bits(),
            pool.heap_bytes() as u64,
        ];
        let mut hash = FNV_OFFSET;
        for word in words {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }

    /// Whether the entry's pool still matches its stamped fingerprint.
    /// Front-coded entries materialize to check — corruption anywhere in
    /// the coded form (or a decode that drifts from the original arena)
    /// surfaces here exactly like arena corruption.
    pub fn verify(&self) -> bool {
        Self::fingerprint(&self.pool()) == self.checksum
    }

    /// Logical bytes this entry charges against the cache budget: the
    /// resident pool representation (arena, or the smaller front-coded
    /// form) plus the cover instance's tables.
    pub fn heap_bytes(&self) -> usize {
        let storage = match &self.storage {
            PoolStorage::Arena(pool) => pool.heap_bytes(),
            PoolStorage::FrontCoded { coded, .. } => coded.heap_bytes(),
        };
        storage + self.cover.heap_bytes()
    }
}

/// Cache counters, cumulative over the owning context's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that required sampling a fresh pool (including lookups
    /// that found a corrupt entry — see `integrity_evictions`).
    pub misses: u64,
    /// Entries dropped to fit the byte budget.
    pub evictions: u64,
    /// Inserts refused because the entry alone exceeds the whole byte
    /// budget (the entry is passed through to the caller uncached;
    /// resident entries are untouched).
    pub rejected: u64,
    /// Entries evicted because their integrity fingerprint no longer
    /// matched on lookup (each also counts as a miss: the caller
    /// resamples).
    pub integrity_evictions: u64,
}

/// An LRU cache of [`CachedPool`]s under a byte-size budget.
///
/// Recency is a vector of keys (least-recent first): touches are `O(k)`
/// in the resident entry count, which is bounded by
/// `budget / smallest-pool-size` — tiny for realistic budgets — and in
/// exchange the eviction order is trivially deterministic and
/// inspectable ([`lru_keys`](Self::lru_keys)).
///
/// An entry that alone exceeds the whole budget is **rejected** (passed
/// through to the caller uncached, counted in
/// [`CacheStats::rejected`]): admitting it would evict every resident
/// entry to cache something that still doesn't fit, turning one
/// oversized query into a whole-cache flush.
#[derive(Debug, Default)]
pub struct PoolCache {
    budget_bytes: usize,
    entries: HashMap<PoolKey, Resident>,
    /// Keys in recency order, least recent first.
    order: Vec<PoolKey>,
    bytes: usize,
    stats: CacheStats,
}

/// A resident entry plus the bytes it was last charged at. Storing the
/// charge per entry (instead of recomputing `heap_bytes()` at eviction)
/// is what makes in-place mutation safe to account: the cache always
/// credits back exactly what it debited, and
/// [`reaccount`](PoolCache::reaccount) reconciles the difference when an
/// entry's size changes under it.
#[derive(Debug)]
struct Resident {
    entry: CachedPool,
    charged: usize,
}

impl PoolCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        PoolCache { budget_bytes, ..Default::default() }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently charged by resident entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident keys in recency order, least recent first (the order
    /// eviction would take them in).
    pub fn lru_keys(&self) -> &[PoolKey] {
        &self.order
    }

    /// Looks a key up, counting a hit (and refreshing recency) or a
    /// miss. An entry that fails its integrity check is evicted and
    /// reported as a miss, so the caller transparently resamples.
    pub fn get(&mut self, key: &PoolKey) -> Option<CachedPool> {
        match self.entries.get(key) {
            Some(resident) if resident.entry.verify() => {
                self.stats.hits += 1;
                let entry = resident.entry.clone();
                self.touch(key);
                Some(entry)
            }
            Some(_) => {
                self.evict(key);
                self.stats.integrity_evictions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Reads a resident entry without counting a hit or refreshing
    /// recency — the maintenance view used by delta repair, which walks
    /// every resident entry and must not perturb the LRU order or the
    /// hit/miss telemetry while doing so.
    pub fn peek(&self, key: &PoolKey) -> Option<&CachedPool> {
        self.entries.get(key).map(|r| &r.entry)
    }

    /// Mutable access to a resident entry for in-place repair. The
    /// borrow deliberately bypasses recency and counters; the caller
    /// **must** follow the mutation with [`reaccount`](Self::reaccount)
    /// — until then the cache's tracked bytes still reflect the
    /// pre-mutation size.
    pub fn entry_mut(&mut self, key: &PoolKey) -> Option<&mut CachedPool> {
        self.entries.get_mut(key).map(|r| &mut r.entry)
    }

    /// Reconciles the tracked byte total after a resident entry was
    /// mutated in place (via [`entry_mut`](Self::entry_mut)): re-measures
    /// the entry, adjusts the cache total by the difference, and — if the
    /// entry grew past the budget — evicts least-recent entries exactly
    /// as [`insert`](Self::insert) would, including the reaccounted entry
    /// itself if it alone no longer fits. Returns whether the key is
    /// still resident afterwards; `false` for absent keys.
    pub fn reaccount(&mut self, key: &PoolKey) -> bool {
        let Some(resident) = self.entries.get_mut(key) else {
            return false;
        };
        let fresh = resident.entry.heap_bytes();
        self.bytes = self.bytes - resident.charged + fresh;
        resident.charged = fresh;
        self.debug_check_accounting();
        while self.bytes > self.budget_bytes && self.order.len() > 1 {
            let victim = self.order.remove(0);
            let dropped = self.entries.remove(&victim).expect("order/entries in sync");
            self.bytes -= dropped.charged;
            self.stats.evictions += 1;
        }
        if self.bytes > self.budget_bytes && self.entries.contains_key(key) {
            // The mutated entry alone exceeds the budget — the in-place
            // analogue of insert's oversized rejection.
            self.evict(key);
            self.stats.rejected += 1;
        }
        self.debug_check_accounting();
        self.entries.contains_key(key)
    }

    /// Inserts an entry as most-recent and evicts least-recent entries
    /// until the budget holds. Re-inserting a resident key replaces the
    /// entry. An entry that alone exceeds the whole budget is rejected
    /// (resident entries untouched, [`CacheStats::rejected`] bumped) —
    /// the caller already holds the entry and loses nothing but reuse.
    pub fn insert(&mut self, key: PoolKey, entry: CachedPool) {
        let charged = entry.heap_bytes();
        if charged > self.budget_bytes {
            self.stats.rejected += 1;
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.charged;
            self.order.retain(|k| k != &key);
        }
        self.bytes += charged;
        self.entries.insert(key, Resident { entry, charged });
        self.order.push(key);
        while self.bytes > self.budget_bytes && self.order.len() > 1 {
            let victim = self.order.remove(0);
            let dropped = self.entries.remove(&victim).expect("order/entries in sync");
            self.bytes -= dropped.charged;
            self.stats.evictions += 1;
        }
        self.debug_check_accounting();
    }

    /// Drops a key outright (no counter changes) — the consistency hook
    /// the session uses to discard a possibly half-built entry after a
    /// caught panic. Returns whether the key was resident.
    pub fn remove(&mut self, key: &PoolKey) -> bool {
        self.evict(key)
    }

    /// Integrity eviction from a maintenance walk (delta repair): drops
    /// an entry whose fingerprint no longer matches, counted in
    /// [`CacheStats::integrity_evictions`] like a lookup-time detection
    /// but **without** a miss — no caller is waiting for this entry, so
    /// there is no lookup to account. Returns whether a key was dropped.
    pub fn evict_corrupt(&mut self, key: &PoolKey) -> bool {
        if self.evict(key) {
            self.stats.integrity_evictions += 1;
            true
        } else {
            false
        }
    }

    /// Fault-injection hook ([`crate::FaultKind::CorruptCacheEntry`]):
    /// invalidates the resident entry's integrity fingerprint in place,
    /// so the next [`get`](Self::get) detects corruption, evicts, and
    /// forces a resample. Returns whether the key was resident.
    pub fn corrupt_entry(&mut self, key: &PoolKey) -> bool {
        match self.entries.get_mut(key) {
            Some(resident) => {
                resident.entry.checksum ^= 1;
                true
            }
            None => false,
        }
    }

    fn evict(&mut self, key: &PoolKey) -> bool {
        match self.entries.remove(key) {
            Some(dropped) => {
                self.bytes -= dropped.charged;
                self.order.retain(|k| k != key);
                true
            }
            None => false,
        }
    }

    /// Debug-build invariant: the tracked byte total is exactly the sum
    /// of per-entry charges. Checked at every accounting boundary
    /// (insert, reaccount) — a drift here is the in-place-mutation bug
    /// this accounting scheme exists to prevent.
    fn debug_check_accounting(&self) {
        debug_assert_eq!(
            self.bytes,
            self.entries.values().map(|r| r.charged).sum::<usize>(),
            "cache byte total must equal the summed per-entry charges"
        );
    }

    fn touch(&mut self, key: &PoolKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raf_graph::{GraphBuilder, NodeId, WeightScheme};
    use raf_model::sampler::SampleRequest;
    use raf_model::FriendingInstance;

    fn entry(walks: u64) -> CachedPool {
        // A real pool/cover pair off a tiny line graph; `walks` scales
        // nothing here (one unique path), it only differentiates keys.
        let mut b = GraphBuilder::new();
        b.add_edges((0..4).map(|i| (i, i + 1))).unwrap();
        let g = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let inst = FriendingInstance::new(&g, NodeId::new(0), NodeId::new(4)).unwrap();
        let pool = SampleRequest::new(walks).seed(3).run(&inst);
        let cover = CoverInstance::from_path_pool(g.node_count(), pool.clone()).unwrap();
        CachedPool::new(Arc::new(pool), Arc::new(cover))
    }

    fn key(s: u32) -> PoolKey {
        PoolKey { s, t: 99, walks: 1_000 }
    }

    #[test]
    fn hit_miss_counters_and_recency() {
        let mut cache = PoolCache::new(usize::MAX);
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats(), CacheStats { misses: 1, ..Default::default() });
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        assert!(cache.get(&key(1)).is_some());
        assert_eq!(cache.stats().hits, 1);
        // The hit refreshed key(1): key(2) is now the LRU victim.
        assert_eq!(cache.lru_keys(), &[key(2), key(1)]);
    }

    #[test]
    fn evicts_in_lru_order_under_byte_budget() {
        let one = entry(500).heap_bytes();
        // Room for exactly two entries.
        let mut cache = PoolCache::new(2 * one);
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 2 * one);
        // Third entry evicts the least-recent (key 1).
        cache.insert(key(3), entry(500));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        // Touch key(2), then insert: key(3) — now least recent — goes.
        cache.insert(key(4), entry(500));
        assert!(cache.get(&key(3)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(4)).is_some());
    }

    #[test]
    fn byte_accounting_is_exact() {
        let e = entry(500);
        let one = e.heap_bytes();
        assert_eq!(
            one,
            e.pool().heap_bytes() + e.cover.heap_bytes(),
            "entry bytes must be the sum of its parts"
        );
        let mut cache = PoolCache::new(10 * one);
        for s in 0..3 {
            cache.insert(key(s), entry(500));
        }
        assert_eq!(cache.bytes(), 3 * one);
        // Replacing a resident key must not double-charge.
        cache.insert(key(1), entry(500));
        assert_eq!(cache.bytes(), 3 * one);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn oversized_entry_is_rejected_not_cached() {
        // Regression: an entry larger than the whole budget used to be
        // retained while every resident entry was evicted — one oversized
        // query flushed the cache and cached nothing usable. It must pass
        // through instead, leaving residents untouched.
        let one = entry(500).heap_bytes();
        let mut cache = PoolCache::new(2 * one);
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        let giant = {
            // Many distinct walks on a wider graph: strictly bigger than
            // the two-entry budget.
            let mut b = GraphBuilder::new();
            b.add_edges((0..40usize).map(|i| (i, i + 1))).unwrap();
            b.add_edges((1..40usize).map(|i| (i, 41))).unwrap();
            let g = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
            let inst = FriendingInstance::new(&g, NodeId::new(0), NodeId::new(41)).unwrap();
            let pool = SampleRequest::new(20_000).seed(3).run(&inst);
            let cover = CoverInstance::from_path_pool(g.node_count(), pool.clone()).unwrap();
            CachedPool::new(Arc::new(pool), Arc::new(cover))
        };
        assert!(giant.heap_bytes() > 2 * one, "fixture must exceed the budget");
        cache.insert(key(9), giant);
        // Pass-through: nothing evicted, nothing cached, counter bumped.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 2 * one);
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(9)).is_none());
    }

    #[test]
    fn nothing_fits_budget_rejects_everything() {
        let mut cache = PoolCache::new(1);
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.stats().rejected, 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn corrupt_entry_is_detected_evicted_and_remissed() {
        let mut cache = PoolCache::new(usize::MAX);
        cache.insert(key(1), entry(500));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.corrupt_entry(&key(1)));
        assert!(!cache.corrupt_entry(&key(7)), "absent keys cannot be corrupted");
        // The corrupted entry is evicted on lookup and reported as a miss.
        assert!(cache.get(&key(1)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.integrity_evictions, 1);
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(cache.is_empty());
        // Reinsert recovers: the fresh entry verifies again.
        cache.insert(key(1), entry(500));
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn evict_corrupt_counts_integrity_without_a_lookup() {
        let mut cache = PoolCache::new(usize::MAX);
        cache.insert(key(1), entry(500));
        assert!(cache.corrupt_entry(&key(1)));
        assert!(cache.evict_corrupt(&key(1)));
        assert!(!cache.evict_corrupt(&key(1)), "a dropped key cannot be evicted again");
        let stats = cache.stats();
        assert_eq!(stats.integrity_evictions, 1);
        assert_eq!((stats.hits, stats.misses), (0, 0), "maintenance evictions are not lookups");
        assert_eq!(stats.evictions, 0, "integrity evictions are not capacity evictions");
        assert!(cache.is_empty());
    }

    #[test]
    fn remove_discards_without_counting() {
        let mut cache = PoolCache::new(usize::MAX);
        cache.insert(key(1), entry(500));
        let stats_before = cache.stats();
        assert!(cache.remove(&key(1)));
        assert!(!cache.remove(&key(1)));
        assert_eq!(cache.stats(), stats_before, "remove is not an eviction");
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert!(cache.lru_keys().is_empty());
    }

    #[test]
    fn fresh_entries_verify() {
        let e = entry(500);
        assert!(e.verify());
        let clone = e.clone();
        assert!(clone.verify(), "fingerprints survive cloning");
    }

    /// A bigger entry than `entry(500)` produces, for in-place growth.
    fn wide_entry(walks: u64) -> CachedPool {
        let mut b = GraphBuilder::new();
        b.add_edges((0..12usize).map(|i| (i, i + 1))).unwrap();
        b.add_edges((2..12usize).map(|i| (i, 13))).unwrap();
        let g = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let inst = FriendingInstance::new(&g, NodeId::new(0), NodeId::new(13)).unwrap();
        let pool = SampleRequest::new(walks).seed(5).run(&inst);
        let cover = CoverInstance::from_path_pool(g.node_count(), pool.clone()).unwrap();
        CachedPool::new(Arc::new(pool), Arc::new(cover))
    }

    #[test]
    fn reaccount_reconciles_in_place_mutation() {
        // Regression: bytes were only adjusted at insert/evict, so
        // mutating a resident entry in place (delta repair) silently
        // skewed the tracked total — the budget then over- or
        // under-evicted forever after.
        let small = entry(500);
        let big = wide_entry(8_000);
        let (small_bytes, big_bytes) = (small.heap_bytes(), big.heap_bytes());
        assert!(big_bytes > small_bytes, "fixture: mutation must change the size");
        let mut cache = PoolCache::new(10 * big_bytes);
        cache.insert(key(1), small);
        cache.insert(key(2), entry(500));
        assert_eq!(cache.bytes(), small_bytes + entry(500).heap_bytes());

        // Mutate key(1) in place: the tracked total is stale until
        // reaccount reconciles it.
        *cache.entry_mut(&key(1)).unwrap() = big.clone();
        assert!(cache.reaccount(&key(1)), "entry still fits the budget");
        assert_eq!(cache.bytes(), big_bytes + entry(500).heap_bytes());
        // Shrink back; the credit is exact, not cumulative.
        *cache.entry_mut(&key(1)).unwrap() = entry(500);
        assert!(cache.reaccount(&key(1)));
        assert_eq!(cache.bytes(), 2 * small_bytes);
        // Absent keys are reported, not invented.
        assert!(!cache.reaccount(&key(9)));
        assert!(cache.entry_mut(&key(9)).is_none());
    }

    #[test]
    fn reaccount_enforces_the_budget_after_growth() {
        let small_bytes = entry(500).heap_bytes();
        let big = wide_entry(8_000);
        // Budget: three small entries, or the big one plus one small.
        let budget = big.heap_bytes() + small_bytes;
        let mut cache = PoolCache::new(budget);
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        cache.insert(key(3), entry(500));
        assert_eq!(cache.len(), 3);
        // Growing key(3) in place forces the LRU victim (key 1) out.
        *cache.entry_mut(&key(3)).unwrap() = big;
        assert!(cache.reaccount(&key(3)));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.peek(&key(1)).is_none(), "LRU victim evicted");
        assert!(cache.peek(&key(2)).is_some());
        assert!(cache.bytes() <= budget);
        // Growing past the whole budget rejects the entry itself.
        let mut tiny = PoolCache::new(small_bytes);
        tiny.insert(key(1), entry(500));
        *tiny.entry_mut(&key(1)).unwrap() = wide_entry(8_000);
        assert!(!tiny.reaccount(&key(1)), "oversized mutation cannot stay resident");
        assert!(tiny.is_empty());
        assert_eq!(tiny.bytes(), 0);
        assert_eq!(tiny.stats().rejected, 1);
    }

    #[test]
    fn peek_reads_without_counting_or_touching() {
        let mut cache = PoolCache::new(usize::MAX);
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        let stats_before = cache.stats();
        assert!(cache.peek(&key(1)).is_some());
        assert!(cache.peek(&key(9)).is_none());
        assert_eq!(cache.stats(), stats_before, "peek is not a lookup");
        assert_eq!(cache.lru_keys(), &[key(1), key(2)], "peek must not refresh recency");
    }

    #[test]
    fn front_coded_entry_decodes_bit_identical_and_charges_fewer_bytes() {
        let mut b = GraphBuilder::new();
        b.add_edges(vec![(0, 2), (2, 3), (3, 1), (0, 4), (4, 1), (2, 4), (3, 5), (5, 1), (5, 4)])
            .unwrap();
        let g = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let inst = FriendingInstance::new(&g, NodeId::new(0), NodeId::new(1)).unwrap();
        let pool = SampleRequest::new(30_000).seed(7).run(&inst);
        let cover = Arc::new(CoverInstance::from_path_pool(g.node_count(), pool.clone()).unwrap());
        let arena = CachedPool::new(Arc::new(pool.clone()), Arc::clone(&cover));
        let coded = CachedPool::new_front_coded(&pool, cover);
        assert!(!arena.is_front_coded());
        assert!(coded.is_front_coded());
        // The decode is the bit-identical arena — same answers, same
        // fingerprint, so verify() passes on both forms.
        assert_eq!(*coded.pool(), pool);
        assert_eq!(coded.pool().pmax_estimate().to_bits(), pool.pmax_estimate().to_bits());
        assert!(arena.verify() && coded.verify());
        // What the budget sees differs: the coded form charges less.
        assert!(
            coded.heap_bytes() < arena.heap_bytes(),
            "front-coded residency must cost fewer bytes ({} vs {})",
            coded.heap_bytes(),
            arena.heap_bytes()
        );
    }

    #[test]
    fn corruption_in_front_coded_entries_is_still_detected() {
        let mut cache = PoolCache::new(usize::MAX);
        let e = entry(500);
        let coded = CachedPool::new_front_coded(&e.pool(), Arc::clone(&e.cover));
        cache.insert(key(1), coded);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.corrupt_entry(&key(1)));
        assert!(cache.get(&key(1)).is_none(), "corrupt coded entry must not serve");
        assert_eq!(cache.stats().integrity_evictions, 1);
    }
}
