//! The byte-budgeted LRU pool cache behind [`crate::SessionContext`].

use raf_cover::CoverInstance;
use raf_model::sampler::PathPool;
use std::collections::HashMap;
use std::sync::Arc;

/// The identity of a cached pool: the pair plus the walk parameters the
/// pool was sampled with. `α` and the raw realization budget are
/// deliberately **absent** — neither changes the sampled walks (the
/// budget only participates through the effective `walks` clamp), which
/// is exactly the reuse the cache exists to exploit. The source is part
/// of the key because backward walks terminate on the source's seed
/// frontier `N(s)`: pools for the same target under different sources
/// are different distributions.
///
/// The master seed and thread count also shape the sampled walk multiset,
/// but they are context-wide constants (fixed in
/// [`crate::ServeConfig`]), so they live in the configuration rather
/// than in every key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// The source (original-space id).
    pub s: u32,
    /// The target (original-space id).
    pub t: u32,
    /// Effective walk count the pool was sampled with.
    pub walks: u64,
}

/// One resident cache entry: the sampled pool and the weighted cover
/// instance built from it. Both are `α`-independent, so a warm query
/// re-runs only the solve. `Arc`-shared so answers can keep reading a
/// pool that eviction has already dropped from the cache.
#[derive(Debug, Clone)]
pub struct CachedPool {
    /// The sampled (deduplicated, canonical-order) pool.
    pub pool: Arc<PathPool>,
    /// The cover instance over the pool, built once per miss.
    pub cover: Arc<CoverInstance>,
}

impl CachedPool {
    /// Logical bytes this entry charges against the cache budget: the
    /// pool's arena plus the cover instance's (the two are the same order
    /// of magnitude — the cover mirrors the pool's flat tables).
    pub fn heap_bytes(&self) -> usize {
        self.pool.heap_bytes() + self.cover.heap_bytes()
    }
}

/// Cache counters, cumulative over the owning context's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that required sampling a fresh pool.
    pub misses: u64,
    /// Entries dropped to fit the byte budget.
    pub evictions: u64,
}

/// An LRU cache of [`CachedPool`]s under a byte-size budget.
///
/// Recency is a vector of keys (least-recent first): touches are `O(k)`
/// in the resident entry count, which is bounded by
/// `budget / smallest-pool-size` — tiny for realistic budgets — and in
/// exchange the eviction order is trivially deterministic and
/// inspectable ([`lru_keys`](Self::lru_keys)).
///
/// The newest entry is always retained, even when it alone exceeds the
/// budget: evicting the pool a query is about to read would turn the
/// cache into a thrash loop for every over-budget pool.
#[derive(Debug, Default)]
pub struct PoolCache {
    budget_bytes: usize,
    entries: HashMap<PoolKey, CachedPool>,
    /// Keys in recency order, least recent first.
    order: Vec<PoolKey>,
    bytes: usize,
    stats: CacheStats,
}

impl PoolCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        PoolCache { budget_bytes, ..Default::default() }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently charged by resident entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident keys in recency order, least recent first (the order
    /// eviction would take them in).
    pub fn lru_keys(&self) -> &[PoolKey] {
        &self.order
    }

    /// Looks a key up, counting a hit (and refreshing recency) or a miss.
    pub fn get(&mut self, key: &PoolKey) -> Option<CachedPool> {
        match self.entries.get(key) {
            Some(entry) => {
                self.stats.hits += 1;
                let entry = entry.clone();
                self.touch(key);
                Some(entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts an entry as most-recent and evicts least-recent entries
    /// until the budget holds (the fresh entry itself is never evicted).
    /// Re-inserting a resident key replaces the entry.
    pub fn insert(&mut self, key: PoolKey, entry: CachedPool) {
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.heap_bytes();
            self.order.retain(|k| k != &key);
        }
        self.bytes += entry.heap_bytes();
        self.entries.insert(key, entry);
        self.order.push(key);
        while self.bytes > self.budget_bytes && self.order.len() > 1 {
            let victim = self.order.remove(0);
            let dropped = self.entries.remove(&victim).expect("order/entries in sync");
            self.bytes -= dropped.heap_bytes();
            self.stats.evictions += 1;
        }
    }

    fn touch(&mut self, key: &PoolKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raf_graph::{GraphBuilder, NodeId, WeightScheme};
    use raf_model::sampler::sample_pool_parallel;
    use raf_model::FriendingInstance;

    fn entry(walks: u64) -> CachedPool {
        // A real pool/cover pair off a tiny line graph; `walks` scales
        // nothing here (one unique path), it only differentiates keys.
        let mut b = GraphBuilder::new();
        b.add_edges((0..4).map(|i| (i, i + 1))).unwrap();
        let g = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let inst = FriendingInstance::new(&g, NodeId::new(0), NodeId::new(4)).unwrap();
        let pool = sample_pool_parallel(&inst, walks, 3, 1);
        let cover = CoverInstance::from_path_pool(g.node_count(), pool.clone()).unwrap();
        CachedPool { pool: Arc::new(pool), cover: Arc::new(cover) }
    }

    fn key(s: u32) -> PoolKey {
        PoolKey { s, t: 99, walks: 1_000 }
    }

    #[test]
    fn hit_miss_counters_and_recency() {
        let mut cache = PoolCache::new(usize::MAX);
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1, evictions: 0 });
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        assert!(cache.get(&key(1)).is_some());
        assert_eq!(cache.stats().hits, 1);
        // The hit refreshed key(1): key(2) is now the LRU victim.
        assert_eq!(cache.lru_keys(), &[key(2), key(1)]);
    }

    #[test]
    fn evicts_in_lru_order_under_byte_budget() {
        let one = entry(500).heap_bytes();
        // Room for exactly two entries.
        let mut cache = PoolCache::new(2 * one);
        cache.insert(key(1), entry(500));
        cache.insert(key(2), entry(500));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 2 * one);
        // Third entry evicts the least-recent (key 1).
        cache.insert(key(3), entry(500));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        // Touch key(2), then insert: key(3) — now least recent — goes.
        cache.insert(key(4), entry(500));
        assert!(cache.get(&key(3)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(4)).is_some());
    }

    #[test]
    fn byte_accounting_is_exact() {
        let e = entry(500);
        let one = e.heap_bytes();
        assert_eq!(
            one,
            e.pool.heap_bytes() + e.cover.heap_bytes(),
            "entry bytes must be the sum of its parts"
        );
        let mut cache = PoolCache::new(10 * one);
        for s in 0..3 {
            cache.insert(key(s), entry(500));
        }
        assert_eq!(cache.bytes(), 3 * one);
        // Replacing a resident key must not double-charge.
        cache.insert(key(1), entry(500));
        assert_eq!(cache.bytes(), 3 * one);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn oversized_newest_entry_is_retained() {
        let mut cache = PoolCache::new(1); // nothing fits
        cache.insert(key(1), entry(500));
        assert_eq!(cache.len(), 1, "the newest entry must survive an over-budget insert");
        cache.insert(key(2), entry(500));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }
}
