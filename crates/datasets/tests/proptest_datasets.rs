//! Property tests for the dataset layer: calibration across scales and
//! seeds, pair-sampler contracts.

use proptest::prelude::*;
use raf_datasets::synthetic::{calibration_error, generate};
use raf_datasets::{sample_pairs, Dataset, PairSamplerConfig};
use raf_graph::{connected_components, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Stand-ins stay calibrated to Table I density across scales and
    /// seeds, and come out connected (pair sampling relies on it).
    #[test]
    fn standins_calibrated_across_scales(
        seed in 0u64..50,
        scale_pct in 1usize..4,
    ) {
        let scale = scale_pct as f64 / 100.0;
        for dataset in [Dataset::Wiki, Dataset::HepTh, Dataset::HepPh] {
            let g = generate(dataset, scale, seed).unwrap();
            let (dn, dm) = calibration_error(&dataset.spec(), &g, scale);
            prop_assert!(dn < 0.06, "{dataset} node dev {dn} at scale {scale}");
            prop_assert!(dm < 0.12, "{dataset} edge dev {dm} at scale {scale}");
            prop_assert_eq!(connected_components(&g).count(), 1);
            prop_assert!(g.validate().is_ok());
        }
    }

    /// The pair sampler's outputs always satisfy its contract.
    #[test]
    fn pair_sampler_contract(seed in 0u64..50) {
        let g = generate(Dataset::Wiki, 0.01, seed).unwrap().to_csr();
        let cfg = PairSamplerConfig {
            pairs: 5,
            screen_samples: 400,
            seed,
            max_attempts: 50_000,
            ..Default::default()
        };
        let pairs = sample_pairs(&g, &cfg);
        for p in &pairs {
            prop_assert!(p.pmax_estimate >= cfg.pmax_threshold);
            prop_assert_ne!(p.s, p.t);
            let s = NodeId::new(p.s as usize);
            let t = NodeId::new(p.t as usize);
            prop_assert!(!g.has_edge(s, t), "sampled pair already friends");
            prop_assert!(g.degree(s) > 0 && g.degree(t) > 0);
        }
    }
}
