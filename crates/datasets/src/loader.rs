//! Dataset loading: real SNAP files when available, synthetic stand-ins
//! otherwise.

use crate::{synthetic, Dataset};
use raf_graph::io::{read_edge_list_path, EdgeListOptions};
use raf_graph::{GraphError, SocialGraph, WeightScheme};
use std::path::{Path, PathBuf};

/// Where a loaded dataset came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSource {
    /// A real SNAP edge list found on disk.
    Real,
    /// The calibrated synthetic stand-in (DESIGN.md §4).
    Synthetic,
}

/// A loaded dataset with provenance.
#[derive(Debug, Clone)]
pub struct LoadedDataset {
    /// The graph, weighted with the paper's `w(u,v) = 1/|N_v|` convention.
    pub graph: SocialGraph,
    /// Real file or synthetic stand-in.
    pub source: DatasetSource,
    /// Which dataset this is.
    pub dataset: Dataset,
}

/// Loads `dataset` at `scale`, preferring a real edge list at
/// `<data_dir>/<stem>.txt` (any SNAP-format file; `scale` is ignored for
/// real data, which is used as-is).
///
/// # Errors
///
/// Propagates file-parse errors for real data and generator errors for
/// synthetic data. A *missing* file is not an error — it selects the
/// synthetic path.
pub fn load_dataset(
    dataset: Dataset,
    scale: f64,
    seed: u64,
    data_dir: &Path,
) -> Result<LoadedDataset, GraphError> {
    let path = real_data_path(dataset, data_dir);
    if path.exists() {
        let builder = read_edge_list_path(&path, &EdgeListOptions::default())?;
        let graph = builder.build(WeightScheme::UniformByDegree)?;
        return Ok(LoadedDataset { graph, source: DatasetSource::Real, dataset });
    }
    let graph = synthetic::generate(dataset, scale, seed)?;
    Ok(LoadedDataset { graph, source: DatasetSource::Synthetic, dataset })
}

/// The expected on-disk location for a real copy of `dataset`.
pub fn real_data_path(dataset: Dataset, data_dir: &Path) -> PathBuf {
    data_dir.join(format!("{}.txt", dataset.spec().file_stem))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesizes_when_no_file() {
        let dir = std::env::temp_dir().join("raf_datasets_none");
        let loaded = load_dataset(Dataset::Wiki, 0.02, 1, &dir).unwrap();
        assert_eq!(loaded.source, DatasetSource::Synthetic);
        assert!(loaded.graph.node_count() > 100);
    }

    #[test]
    fn prefers_real_file() {
        let dir = std::env::temp_dir().join("raf_datasets_real");
        std::fs::create_dir_all(&dir).unwrap();
        let path = real_data_path(Dataset::HepTh, &dir);
        std::fs::write(&path, "# test\n0\t1\n1\t2\n2\t0\n").unwrap();
        let loaded = load_dataset(Dataset::HepTh, 1.0, 1, &dir).unwrap();
        assert_eq!(loaded.source, DatasetSource::Real);
        assert_eq!(loaded.graph.node_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn real_file_parse_error_propagates() {
        let dir = std::env::temp_dir().join("raf_datasets_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = real_data_path(Dataset::HepPh, &dir);
        std::fs::write(&path, "not numbers here\n").unwrap();
        assert!(load_dataset(Dataset::HepPh, 1.0, 1, &dir).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn path_convention() {
        let p = real_data_path(Dataset::Youtube, Path::new("/data"));
        assert_eq!(p, PathBuf::from("/data/youtube.txt"));
    }
}
