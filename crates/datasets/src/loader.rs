//! Dataset loading: real SNAP files when available, synthetic stand-ins
//! otherwise, with an optional hub-BFS relabeling applied at CSR build
//! time for the large-graph sampling path.

use crate::{synthetic, Dataset};
use raf_graph::io::{read_edge_list_path, EdgeListOptions};
use raf_graph::{
    CsrGraph, GraphError, NodeId, RelabelOrder, Relabeling, SocialGraph, WeightScheme,
};
use raf_model::{FriendingInstance, ModelError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where a loaded dataset came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSource {
    /// A real SNAP edge list found on disk.
    Real,
    /// The calibrated synthetic stand-in (DESIGN.md §4).
    Synthetic,
}

/// A loaded dataset with provenance.
#[derive(Debug, Clone)]
pub struct LoadedDataset {
    /// The graph, weighted with the paper's `w(u,v) = 1/|N_v|` convention.
    pub graph: SocialGraph,
    /// Real file or synthetic stand-in.
    pub source: DatasetSource,
    /// Which dataset this is.
    pub dataset: Dataset,
}

/// How the CSR snapshot of a loaded dataset is laid out: the file's own
/// order, or one of the cache-locality renumberings of
/// [`RelabelOrder`]. Whatever the layout, instance results are reported
/// in original ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelabelMode {
    /// File/generator order, neighbor slices sorted by id.
    Plain,
    /// Hub-seeded BFS renumbering ([`Relabeling::hub_bfs`]): the
    /// cache-oblivious layout that collapses the walk loop's dependent
    /// metadata-load chain on large graphs. The default for dataset
    /// workloads.
    #[default]
    HubBfs,
    /// Degree-descending renumbering ([`Relabeling::degree_descending`]).
    DegreeDescending,
    /// Reverse Cuthill–McKee renumbering ([`Relabeling::rcm`]).
    Rcm,
}

impl RelabelMode {
    /// The layout order this mode applies (`None` for [`Plain`](Self::Plain)).
    pub fn order(self) -> Option<RelabelOrder> {
        match self {
            RelabelMode::Plain => None,
            RelabelMode::HubBfs => Some(RelabelOrder::HubBfs),
            RelabelMode::DegreeDescending => Some(RelabelOrder::DegreeDescending),
            RelabelMode::Rcm => Some(RelabelOrder::Rcm),
        }
    }

    /// The snake_case name (`plain` or the order's name) — the value the
    /// `raf experiment --relabel` flag accepts.
    pub fn name(self) -> &'static str {
        match self.order() {
            None => "plain",
            Some(order) => order.name(),
        }
    }

    /// Parses [`name`](Self::name) back into a mode. Delegates to
    /// [`RelabelOrder::parse`] for the ordered layouts, so a future
    /// order variant is covered the moment `From<RelabelOrder>` compiles.
    pub fn parse(name: &str) -> Option<RelabelMode> {
        if name == RelabelMode::Plain.name() {
            return Some(RelabelMode::Plain);
        }
        RelabelOrder::parse(name).map(RelabelMode::from)
    }
}

impl From<RelabelOrder> for RelabelMode {
    fn from(order: RelabelOrder) -> RelabelMode {
        match order {
            RelabelOrder::HubBfs => RelabelMode::HubBfs,
            RelabelOrder::DegreeDescending => RelabelMode::DegreeDescending,
            RelabelOrder::Rcm => RelabelMode::Rcm,
        }
    }
}

/// A dataset prepared for sampling: the CSR snapshot (possibly hub-BFS
/// relabeled) plus the permutation needed to build instances that report
/// original-space ids.
#[derive(Debug, Clone)]
pub struct PreparedCsr {
    /// The snapshot sampling runs on.
    pub csr: CsrGraph,
    /// The applied permutation (`None` for [`RelabelMode::Plain`]).
    pub relabeling: Option<Arc<Relabeling>>,
    /// Real file or synthetic stand-in.
    pub source: DatasetSource,
    /// Which dataset this is.
    pub dataset: Dataset,
}

impl PreparedCsr {
    /// Builds a [`FriendingInstance`] for an `(s, t)` pair given in
    /// **original** ids; on a relabeled snapshot the instance carries the
    /// inverse permutation so pools, paths, and invitation sets come back
    /// in original ids (bit-identical to the plain layout).
    ///
    /// # Errors
    ///
    /// Propagates instance validation failures ([`ModelError`]).
    pub fn instance(&self, s: NodeId, t: NodeId) -> Result<FriendingInstance<'_>, ModelError> {
        match &self.relabeling {
            None => FriendingInstance::new(&self.csr, s, t),
            Some(r) => FriendingInstance::relabeled(&self.csr, s, t, r.clone()),
        }
    }
}

/// Loads `dataset` at `scale`, preferring a real edge list at
/// `<data_dir>/<stem>.txt` (any SNAP-format file; `scale` is ignored for
/// real data, which is used as-is).
///
/// # Errors
///
/// Propagates file-parse errors for real data and generator errors for
/// synthetic data. A *missing* file is not an error — it selects the
/// synthetic path.
pub fn load_dataset(
    dataset: Dataset,
    scale: f64,
    seed: u64,
    data_dir: &Path,
) -> Result<LoadedDataset, GraphError> {
    let path = real_data_path(dataset, data_dir);
    if path.exists() {
        let builder = read_edge_list_path(&path, &EdgeListOptions::default())?;
        let graph = builder.build(WeightScheme::UniformByDegree)?;
        return Ok(LoadedDataset { graph, source: DatasetSource::Real, dataset });
    }
    let graph = synthetic::generate(dataset, scale, seed)?;
    Ok(LoadedDataset { graph, source: DatasetSource::Synthetic, dataset })
}

/// [`load_dataset`] followed by CSR construction under `mode` — the entry
/// point the experiment harness and the dataset bench scenarios use.
///
/// # Errors
///
/// As [`load_dataset`].
pub fn load_dataset_csr(
    dataset: Dataset,
    scale: f64,
    seed: u64,
    data_dir: &Path,
    mode: RelabelMode,
) -> Result<PreparedCsr, GraphError> {
    let loaded = load_dataset(dataset, scale, seed, data_dir)?;
    let (csr, relabeling) = match mode.order() {
        None => (loaded.graph.to_csr(), None),
        Some(order) => {
            let r = Arc::new(order.relabeling(&loaded.graph));
            (loaded.graph.to_csr_relabeled(&r), Some(r))
        }
    };
    Ok(PreparedCsr { csr, relabeling, source: loaded.source, dataset: loaded.dataset })
}

/// The expected on-disk location for a real copy of `dataset`.
pub fn real_data_path(dataset: Dataset, data_dir: &Path) -> PathBuf {
    data_dir.join(format!("{}.txt", dataset.spec().file_stem))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique-per-test scratch directory, removed on drop. The previous
    /// fixture wrote fixed paths under `temp_dir()` (e.g.
    /// `raf_datasets_real/hepth.txt`), which collided across concurrent
    /// and repeated test runs — each test now gets its own directory.
    struct ScratchDir {
        path: PathBuf,
    }

    impl ScratchDir {
        fn new(test: &str) -> Self {
            let unique = format!(
                "raf_datasets_{test}_{}_{:?}",
                std::process::id(),
                std::thread::current().id(),
            );
            let path = std::env::temp_dir().join(unique);
            // A stale directory from a killed run must not leak fixtures
            // into this one.
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            ScratchDir { path }
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    #[test]
    fn synthesizes_when_no_file() {
        let dir = ScratchDir::new("none");
        let loaded = load_dataset(Dataset::Wiki, 0.02, 1, &dir.path).unwrap();
        assert_eq!(loaded.source, DatasetSource::Synthetic);
        assert!(loaded.graph.node_count() > 100);
    }

    #[test]
    fn prefers_real_file() {
        let dir = ScratchDir::new("real");
        let path = real_data_path(Dataset::HepTh, &dir.path);
        std::fs::write(&path, "# test\n0\t1\n1\t2\n2\t0\n").unwrap();
        let loaded = load_dataset(Dataset::HepTh, 1.0, 1, &dir.path).unwrap();
        assert_eq!(loaded.source, DatasetSource::Real);
        assert_eq!(loaded.graph.node_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 3);
    }

    #[test]
    fn real_file_parse_error_propagates() {
        let dir = ScratchDir::new("bad");
        let path = real_data_path(Dataset::HepPh, &dir.path);
        std::fs::write(&path, "not numbers here\n").unwrap();
        assert!(load_dataset(Dataset::HepPh, 1.0, 1, &dir.path).is_err());
    }

    #[test]
    fn path_convention() {
        let p = real_data_path(Dataset::Youtube, Path::new("/data"));
        assert_eq!(p, PathBuf::from("/data/youtube.txt"));
    }

    #[test]
    fn csr_loader_modes_agree_through_the_mapping() {
        let dir = ScratchDir::new("csr_modes");
        let plain =
            load_dataset_csr(Dataset::Wiki, 0.01, 5, &dir.path, RelabelMode::Plain).unwrap();
        let hub = load_dataset_csr(Dataset::Wiki, 0.01, 5, &dir.path, RelabelMode::HubBfs).unwrap();
        assert!(plain.relabeling.is_none());
        let r = hub.relabeling.as_ref().expect("hub mode carries the permutation");
        assert_eq!(plain.csr.node_count(), hub.csr.node_count());
        assert_eq!(plain.csr.edge_count(), hub.csr.edge_count());
        assert!(!hub.csr.has_sorted_neighbors());
        // Spot-check the isomorphism: degrees transport through the map.
        for v in plain.csr.nodes().take(50) {
            assert_eq!(hub.csr.degree(r.new_of(v)), plain.csr.degree(v));
        }
        // Instances built from original ids agree on seed structure.
        let (s, t) = (NodeId::new(0), NodeId::new(plain.csr.node_count() - 1));
        if let (Ok(a), Ok(b)) = (plain.instance(s, t), hub.instance(s, t)) {
            assert_eq!(a.target_original(), b.target_original());
            let seeds_a: Vec<NodeId> = a.seeds().to_vec();
            let mut seeds_b: Vec<NodeId> = b.seeds().iter().map(|&v| b.original_of(v)).collect();
            seeds_b.sort_unstable();
            assert_eq!(seeds_a, seeds_b);
        }
    }

    #[test]
    fn relabel_mode_names_round_trip() {
        // Derived from RelabelOrder::ALL so a future order variant is
        // covered here without editing this list.
        let modes =
            std::iter::once(RelabelMode::Plain).chain(RelabelOrder::ALL.map(RelabelMode::from));
        for mode in modes {
            assert_eq!(RelabelMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(RelabelMode::parse("hub_bfs"), Some(RelabelMode::HubBfs));
        assert_eq!(RelabelMode::parse("no_such_layout"), None);
        assert_eq!(RelabelMode::Plain.order(), None);
        assert_eq!(RelabelMode::default(), RelabelMode::HubBfs);
    }

    #[test]
    fn every_relabel_order_loads_an_isomorphic_snapshot() {
        let dir = ScratchDir::new("csr_orders");
        let plain =
            load_dataset_csr(Dataset::Wiki, 0.01, 5, &dir.path, RelabelMode::Plain).unwrap();
        for mode in [RelabelMode::HubBfs, RelabelMode::DegreeDescending, RelabelMode::Rcm] {
            let prepared = load_dataset_csr(Dataset::Wiki, 0.01, 5, &dir.path, mode).unwrap();
            let r = prepared.relabeling.as_ref().expect("ordered modes carry the permutation");
            assert_eq!(prepared.csr.node_count(), plain.csr.node_count(), "{}", mode.name());
            assert_eq!(prepared.csr.edge_count(), plain.csr.edge_count(), "{}", mode.name());
            for v in plain.csr.nodes().take(50) {
                assert_eq!(
                    prepared.csr.degree(r.new_of(v)),
                    plain.csr.degree(v),
                    "{}: degree diverged at {v:?}",
                    mode.name()
                );
            }
        }
    }

    #[test]
    fn csr_loader_reports_real_source() {
        let dir = ScratchDir::new("csr_real");
        let path = real_data_path(Dataset::HepTh, &dir.path);
        std::fs::write(&path, "# four-cycle\n10\t20\n20\t30\n30\t40\n40\t10\n").unwrap();
        let prep =
            load_dataset_csr(Dataset::HepTh, 1.0, 1, &dir.path, RelabelMode::HubBfs).unwrap();
        assert_eq!(prep.source, DatasetSource::Real);
        assert_eq!(prep.csr.node_count(), 4);
        assert_eq!(prep.csr.edge_count(), 4);
    }
}
