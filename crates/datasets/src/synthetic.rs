//! Synthetic stand-ins calibrated to Table I.
//!
//! Each dataset maps to a generator family whose topology matches what the
//! friending model actually consumes — a heavy-tailed degree sequence with
//! the right density (see DESIGN.md §4):
//!
//! * **Wiki** → Holme–Kim powerlaw-cluster (dense, clustered votes graph);
//! * **HepTh / HepPh** → preferential attachment (citation networks);
//! * **Youtube** → sparse preferential attachment with fractional mean
//!   attachment (avg degree 5.54 is non-integer).

use crate::{Dataset, DatasetSpec};
use raf_graph::generators::{cycle_graph, erdos_renyi_gnp, grid_graph, powerlaw_cluster};
use raf_graph::{GraphBuilder, GraphError, SocialGraph, WeightScheme};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A named synthetic topology family, sized by node count — the workload
/// axis of the benchmark scenario matrix (`raf bench-json`).
///
/// Unlike the Table-I [`Dataset`] stand-ins (which are calibrated to the
/// paper's datasets), these are *structural* families: a clustered
/// heavy-tailed graph, a homogeneous random graph, and two deterministic
/// lattices, which stress the reverse sampler in qualitatively different
/// ways (hub-concentrated walks vs diffuse walks vs long thin walks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Holme–Kim powerlaw-cluster graph (`m = 2`, triad probability 0.3):
    /// heavy-tailed and clustered, the paper-like hot workload.
    PowerlawCluster,
    /// Erdős–Rényi `G(n, p)` with mean degree 8: homogeneous degrees, no
    /// clustering.
    ErdosRenyi,
    /// Near-square 4-neighbor grid: deterministic, cycle-rich walks.
    Grid,
    /// Cycle graph: deterministic, the degenerate two-route topology.
    Ring,
}

impl Topology {
    /// All families, in scenario-matrix order.
    pub const ALL: [Topology; 4] =
        [Topology::PowerlawCluster, Topology::ErdosRenyi, Topology::Grid, Topology::Ring];

    /// The snake_case scenario-name component.
    pub fn name(self) -> &'static str {
        match self {
            Topology::PowerlawCluster => "powerlaw_cluster",
            Topology::ErdosRenyi => "erdos_renyi",
            Topology::Grid => "grid",
            Topology::Ring => "ring",
        }
    }

    /// Parses [`name`](Self::name) back into a family.
    pub fn parse(name: &str) -> Option<Topology> {
        Topology::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// Generates a [`Topology`] instance with (approximately, for the grid)
/// `nodes` nodes. Deterministic per `(topology, nodes, seed)`; the
/// lattices ignore the seed entirely.
///
/// # Errors
///
/// Propagates generator failures for degenerate sizes (e.g. a ring needs
/// at least 3 nodes).
pub fn generate_topology(
    topology: Topology,
    nodes: usize,
    seed: u64,
) -> Result<SocialGraph, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(topology.name()));
    let builder = match topology {
        Topology::PowerlawCluster => powerlaw_cluster(nodes, 2, 0.3, &mut rng)?,
        Topology::ErdosRenyi => {
            let p = (8.0 / (nodes.max(2) - 1) as f64).min(1.0);
            erdos_renyi_gnp(nodes, p, &mut rng)?
        }
        Topology::Grid => {
            let rows = (nodes as f64).sqrt().round().max(1.0) as usize;
            let cols = nodes.div_ceil(rows);
            grid_graph(rows, cols)?
        }
        Topology::Ring => cycle_graph(nodes)?,
    };
    builder.build(WeightScheme::UniformByDegree)
}

/// Generates the synthetic stand-in for `dataset` at the given `scale`
/// (1.0 = Table I size; 0.1 = 10% of the nodes with matching density).
///
/// Deterministic per `(dataset, scale, seed)`.
///
/// Node ids are **shuffled** with a seeded permutation before the final
/// build: real SNAP files arrive in crawl order and the loader compacts
/// ids by first appearance, so on-disk ids are uncorrelated with
/// topology — whereas generator insertion order leaks it (preferential
/// attachment emits hubs first, which would make the stand-ins look
/// artificially cache-friendly and mask exactly the locality problem
/// hub-BFS relabeling exists to solve). The shuffle restores the
/// real-data property; counts, degrees, and determinism are unaffected.
///
/// # Errors
///
/// Propagates generator failures; `scale` must yield at least a few dozen
/// nodes.
pub fn generate(dataset: Dataset, scale: f64, seed: u64) -> Result<SocialGraph, GraphError> {
    let spec = dataset.spec();
    let n = ((spec.nodes as f64 * scale).round() as usize).max(50);
    let mean_attach = spec.edges as f64 / spec.nodes as f64;
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(spec.name));
    let builder = match dataset {
        Dataset::Wiki => {
            // Dense + clustered: Holme–Kim with integer attachment.
            let m_attach = mean_attach.round() as usize;
            powerlaw_cluster(n, m_attach, 0.35, &mut rng)?
        }
        Dataset::HepTh | Dataset::HepPh | Dataset::Youtube => {
            preferential_attachment_fractional(n, mean_attach, &mut rng)?
        }
    };
    let mut builder = builder;
    let mut perm: Vec<usize> = (0..builder.node_count()).collect();
    perm.shuffle(&mut rng);
    builder.permute_nodes(&perm)?;
    builder.build(WeightScheme::UniformByDegree)
}

/// Preferential attachment with a fractional mean attachment count: each
/// new node attaches to `⌊m⌋` or `⌈m⌉` targets, Bernoulli-chosen so the
/// mean is exactly `m` — hitting non-integer Table I densities like
/// Youtube's 5.45 edges per node.
///
/// The inner loop is **O(attach)** per node: draws come from the
/// endpoint list (one entry per edge endpoint — constant-time sampling
/// of the live degree distribution), and distinctness is checked against
/// a generation-stamped seen array instead of the old linear
/// `chosen.contains` scan (O(attach) per draw, quadratic per node).
/// When rejection sampling stalls on a degenerate degree sequence (one
/// hub holding nearly all the mass), the remaining targets come from a
/// deterministic prefix-sum sweep of the degree distribution — exact by
/// construction (always `attach` distinct targets, debug-asserted,
/// where the old guard path re-ran a `contains`-scanning id sweep
/// inside the fill loop) and RNG-free, so the draw stream stays
/// identical whether or not the fallback fires.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `mean_attach < 1`, when
/// the attachment count would reach `n` (`⌈m⌉ ≥ n` — a dedicated
/// diagnostic naming the attachment count, where the seed-clique check
/// below reports only a node-count bound), or when the graph is too
/// small to host the seed clique.
pub fn preferential_attachment_fractional<R: Rng>(
    n: usize,
    mean_attach: f64,
    rng: &mut R,
) -> Result<GraphBuilder, GraphError> {
    if mean_attach < 1.0 {
        return Err(GraphError::InvalidParameter {
            message: format!("mean attachment {mean_attach} below 1"),
        });
    }
    let lo = mean_attach.floor() as usize;
    let hi = mean_attach.ceil() as usize;
    if hi >= n {
        return Err(GraphError::InvalidParameter {
            message: format!("attachment count {hi} must stay below the node count {n}"),
        });
    }
    let frac_hi = mean_attach - lo as f64;
    let seed_size = hi + 1;
    if n <= seed_size {
        return Err(GraphError::InvalidParameter {
            message: format!("need more than {seed_size} nodes, got {n}"),
        });
    }
    let mut b = GraphBuilder::with_capacity((n as f64 * mean_attach) as usize);
    b.reserve_nodes(n);
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (n as f64 * mean_attach) as usize);
    // degree[u] mirrors the endpoint list (the fallback's sampling
    // weights); stamp[u] == v marks u as already chosen for node v — one
    // O(1) probe replaces the old O(attach) `chosen.contains` scan, and
    // resetting is free because each node uses its own id as the stamp.
    let mut degree: Vec<u32> = vec![0; n];
    let mut stamp: Vec<u32> = vec![u32::MAX; n];
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            b.add_edge(u, v)?;
            endpoints.push(u as u32);
            endpoints.push(v as u32);
            degree[u] += 1;
            degree[v] += 1;
        }
    }
    let mut chosen: Vec<u32> = Vec::with_capacity(hi);
    for v in seed_size..n {
        let attach = if rng.gen::<f64>() < frac_hi { hi } else { lo };
        chosen.clear();
        let mark = v as u32;
        let mut guard = 0usize;
        while chosen.len() < attach {
            let u = endpoints[rng.gen_range(0..endpoints.len())] as usize;
            // Self-loop guard: endpoints only lists nodes below v today,
            // but the invariant is one refactor away from silent
            // breakage, and a stamped probe makes the guard free.
            if u != v && stamp[u] != mark {
                stamp[u] = mark;
                chosen.push(u as u32);
            }
            guard += 1;
            if guard > 100 * attach {
                fill_by_degree_prefix_sum(&degree[..v], &mut stamp, mark, attach, &mut chosen);
                break;
            }
        }
        debug_assert_eq!(chosen.len(), attach, "under-attached node {v}");
        for &u in &chosen {
            b.add_edge(u as usize, v)?;
            endpoints.push(u);
            endpoints.push(v as u32);
            degree[u as usize] += 1;
            degree[v] += 1;
        }
    }
    Ok(b)
}

/// Deterministic, exact fallback for a stalled rejection loop: picks the
/// missing attachment targets by sweeping evenly spaced quantiles of the
/// prefix-summed degree distribution over the existing nodes `0..v`
/// (every one of which has degree ≥ 1), skipping already-stamped nodes
/// by advancing to the next unstamped candidate (wrapping once).
///
/// Degree-biased like the rejection path, consumes no RNG, and always
/// fills `chosen` to exactly `attach` entries: the caller guarantees
/// `attach < v`, so at least `attach - chosen.len()` unstamped
/// candidates exist.
fn fill_by_degree_prefix_sum(
    degree: &[u32],
    stamp: &mut [u32],
    mark: u32,
    attach: usize,
    chosen: &mut Vec<u32>,
) {
    let v = degree.len();
    debug_assert!(attach < v, "cannot pick {attach} distinct targets from {v} nodes");
    let need = attach - chosen.len();
    if need == 0 {
        return;
    }
    let total: u64 = degree.iter().map(|&d| u64::from(d)).sum();
    let mut cum = 0u64;
    let mut cursor = 0usize; // candidate index, advanced with the quantiles
    for i in 0..need {
        // Mid-bucket quantile of the degree mass for the i-th pick.
        let pos = ((2 * i as u64 + 1) * total) / (2 * need as u64);
        while cursor < v && cum + u64::from(degree[cursor]) <= pos {
            cum += u64::from(degree[cursor]);
            cursor += 1;
        }
        // Next unstamped candidate at or after the quantile, wrapping.
        let mut pick = cursor.min(v - 1);
        let mut scanned = 0usize;
        while stamp[pick] == mark {
            pick += 1;
            if pick == v {
                pick = 0;
            }
            scanned += 1;
            debug_assert!(scanned <= v, "no unstamped candidate left");
        }
        stamp[pick] = mark;
        chosen.push(pick as u32);
    }
}

/// Calibration check helper: relative deviation between a generated
/// graph's statistics and the Table I spec at a given scale.
pub fn calibration_error(spec: &DatasetSpec, graph: &SocialGraph, scale: f64) -> (f64, f64) {
    let target_n = spec.nodes as f64 * scale;
    let target_m = spec.edges as f64 * scale;
    let dn = (graph.node_count() as f64 - target_n).abs() / target_n;
    let dm = (graph.edge_count() as f64 - target_m).abs() / target_m;
    (dn, dm)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a: stable across runs (unlike `DefaultHasher`).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use raf_graph::{connected_components, DegreeHistogram};

    #[test]
    fn wiki_standin_density() {
        let g = generate(Dataset::Wiki, 0.05, 1).unwrap();
        let spec = Dataset::Wiki.spec();
        let (dn, dm) = calibration_error(&spec, &g, 0.05);
        assert!(dn < 0.05, "node deviation {dn}");
        assert!(dm < 0.10, "edge deviation {dm}");
    }

    #[test]
    fn hep_standin_density() {
        for d in [Dataset::HepTh, Dataset::HepPh] {
            let g = generate(d, 0.02, 2).unwrap();
            let (dn, dm) = calibration_error(&d.spec(), &g, 0.02);
            assert!(dn < 0.05, "{d}: node deviation {dn}");
            assert!(dm < 0.10, "{d}: edge deviation {dm}");
        }
    }

    #[test]
    fn youtube_standin_fractional_density() {
        let g = generate(Dataset::Youtube, 0.005, 3).unwrap();
        let (dn, dm) = calibration_error(&Dataset::Youtube.spec(), &g, 0.005);
        assert!(dn < 0.05, "node deviation {dn}");
        assert!(dm < 0.10, "edge deviation {dm}");
    }

    #[test]
    fn standins_are_connected_and_heavy_tailed() {
        let g = generate(Dataset::HepTh, 0.02, 4).unwrap();
        assert_eq!(connected_components(&g).count(), 1);
        let h = DegreeHistogram::compute(&g);
        let max_degree = h.counts.len() - 1;
        let mean = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(max_degree as f64 > 4.0 * mean, "no heavy tail: max {max_degree} mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(Dataset::Wiki, 0.02, 9).unwrap();
        let b = generate(Dataset::Wiki, 0.02, 9).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_datasets_differ() {
        let a = generate(Dataset::HepTh, 0.02, 9).unwrap();
        let b = generate(Dataset::HepPh, 0.02, 9).unwrap();
        assert_ne!(a.node_count(), b.node_count());
    }

    #[test]
    fn fractional_attachment_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4_000;
        let mean = 5.45;
        let b = preferential_attachment_fractional(n, mean, &mut rng).unwrap();
        let attached = b.edge_count() as f64 - (6 * 7 / 2) as f64;
        let per_node = attached / (n as f64 - 7.0);
        assert!((per_node - mean).abs() < 0.15, "mean attachment {per_node}");
    }

    #[test]
    fn topology_names_round_trip() {
        for t in Topology::ALL {
            assert_eq!(Topology::parse(t.name()), Some(t));
        }
        assert_eq!(Topology::parse("no_such_family"), None);
    }

    #[test]
    fn topologies_generate_at_requested_scale() {
        for t in Topology::ALL {
            let g = generate_topology(t, 900, 5).unwrap();
            let n = g.node_count();
            assert!((855..=945).contains(&n), "{}: {n} nodes for a 900-node request", t.name());
            assert!(g.edge_count() > 0, "{}: no edges", t.name());
        }
    }

    #[test]
    fn topology_generation_is_deterministic() {
        for t in Topology::ALL {
            let a = generate_topology(t, 400, 9).unwrap();
            let b = generate_topology(t, 400, 9).unwrap();
            let ea: Vec<_> = a.edges().collect();
            let eb: Vec<_> = b.edges().collect();
            assert_eq!(ea, eb, "{}", t.name());
        }
    }

    #[test]
    fn lattices_have_expected_structure() {
        let ring = generate_topology(Topology::Ring, 120, 0).unwrap();
        assert_eq!(ring.node_count(), 120);
        assert_eq!(ring.edge_count(), 120);
        let grid = generate_topology(Topology::Grid, 10_000, 0).unwrap();
        assert_eq!(grid.node_count(), 10_000); // 100 × 100 exactly
        assert_eq!(connected_components(&grid).count(), 1);
    }

    #[test]
    fn topology_rejects_degenerate_sizes() {
        assert!(generate_topology(Topology::Ring, 2, 0).is_err());
    }

    #[test]
    fn fractional_rejects_bad_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(preferential_attachment_fractional(100, 0.5, &mut rng).is_err());
        assert!(preferential_attachment_fractional(3, 5.0, &mut rng).is_err());
    }

    #[test]
    fn fractional_rejects_attach_count_reaching_n() {
        // n = lo + 1: a node could never find `attach` distinct earlier
        // targets — the generator must reject the parameters up front so
        // the fill loop never has to cope with an unsatisfiable request.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            preferential_attachment_fractional(6, 5.0, &mut rng),
            Err(GraphError::InvalidParameter { .. })
        ));
        // ⌈m⌉ ≥ n: the dedicated diagnostic names the attachment count.
        match preferential_attachment_fractional(4, 5.45, &mut rng) {
            Err(GraphError::InvalidParameter { message }) => {
                assert!(message.contains("attachment count 6"), "message: {message}");
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn smallest_valid_n_is_simple_and_fully_attached() {
        // n = seed_size + 1 = ⌈m⌉ + 2, the tightest legal instance: the
        // single non-seed node must attach to exactly ⌈m⌉ = ⌊m⌋ distinct
        // targets, with no self-loops — across seeds (and surviving the
        // id shuffle `generate` applies on top, which is where a broken
        // permutation would first manufacture a self-loop).
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let b = preferential_attachment_fractional(7, 5.0, &mut rng).unwrap();
            let g = b.build(WeightScheme::UniformByDegree).unwrap();
            assert_eq!(g.edge_count(), 6 * 5 / 2 + 5, "seed {seed}");
            for (u, v) in g.edges() {
                assert_ne!(u, v, "self-loop at seed {seed}");
            }
        }
    }

    #[test]
    fn non_seed_nodes_are_never_under_attached() {
        // Every node beyond the seed clique contributes ≥ ⌊m⌋ distinct
        // edges of its own; degree ≥ ⌊m⌋ everywhere is the observable
        // form of "the fill loop is exact".
        let mut rng = StdRng::seed_from_u64(11);
        let b = preferential_attachment_fractional(2_000, 5.45, &mut rng).unwrap();
        let g = b.build(WeightScheme::UniformByDegree).unwrap();
        for v in g.nodes() {
            assert!(g.degree(v) >= 5, "node {v:?} under-attached: degree {}", g.degree(v));
        }
    }

    #[test]
    fn prefix_sum_fallback_is_exact_deterministic_and_degree_biased() {
        // Hub-dominated degenerate degree sequence — the shape that
        // stalls rejection sampling and trips the guard.
        let degree = [100u32, 1, 1, 1, 1];
        let run = |preseed: Option<u32>| {
            let mut stamp = vec![u32::MAX; 5];
            let mut chosen: Vec<u32> = Vec::new();
            if let Some(u) = preseed {
                stamp[u as usize] = 9;
                chosen.push(u);
            }
            fill_by_degree_prefix_sum(&degree, &mut stamp, 9, 3, &mut chosen);
            chosen
        };
        let picks = run(None);
        assert_eq!(picks.len(), 3, "fallback under-filled");
        let mut distinct = picks.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3, "fallback repeated a target: {picks:?}");
        assert!(picks.contains(&0), "the degree-mass holder was skipped: {picks:?}");
        assert_eq!(picks, run(None), "fallback is not deterministic");
        // Resuming a partially filled pick set stays exact and distinct.
        let resumed = run(Some(0));
        assert_eq!(resumed.len(), 3);
        let mut d = resumed.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 3, "resumed fallback repeated: {resumed:?}");
    }
}
