//! Sampling `(s, t)` pairs with the paper's `p_max ≥ 0.01` screening.
//!
//! "For each dataset, we randomly select 500 pairs of s and t with p_max
//! no less than 0.01 … the value p_max is estimated by Monte Carlo
//! simulation for each pair" (Sec. IV, Problem Setting).

use raf_graph::{CsrGraph, NodeId};
use raf_model::pmax::estimate_pmax_fixed;
use raf_model::FriendingInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the pair sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSamplerConfig {
    /// Number of pairs to produce.
    pub pairs: usize,
    /// The screening threshold (paper: 0.01).
    pub pmax_threshold: f64,
    /// Walks per screening estimate.
    pub screen_samples: u64,
    /// Maximum BFS distance between s and t (closer pairs have higher
    /// `p_max`; the paper does not constrain distance, but screening
    /// rejects far pairs anyway — bounding the distance short-circuits
    /// that rejection loop).
    pub max_distance: u32,
    /// Attempt budget before giving up (prevents infinite loops on graphs
    /// where almost all pairs fail the screen).
    pub max_attempts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PairSamplerConfig {
    fn default() -> Self {
        PairSamplerConfig {
            pairs: 500,
            pmax_threshold: 0.01,
            screen_samples: 2_000,
            max_distance: 4,
            max_attempts: 1_000_000,
            seed: 0,
        }
    }
}

/// A screened pair with its estimated `p_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampledPair {
    /// Initiator.
    pub s: u32,
    /// Target.
    pub t: u32,
    /// Screening-phase `p_max` estimate.
    pub pmax_estimate: f64,
}

/// A screened multi-target campaign: one source, `k` distinct targets
/// that each individually pass the `p_max` screen from `s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledCampaign {
    /// The shared initiator.
    pub s: u32,
    /// The screened targets, in ascending node-id order (the campaign
    /// pipeline's canonical order).
    pub targets: Vec<u32>,
    /// Screening-phase `p_max` estimates, aligned with `targets`.
    pub pmax_estimates: Vec<f64>,
}

/// Samples multi-target campaigns: each has one source and
/// `targets_per_campaign` distinct targets drawn from the source's BFS
/// ball, every one individually passing the usual
/// `p_max ≥ pmax_threshold` screen. `config.pairs` is the campaign
/// count. Returns fewer when the attempt budget runs out (sources whose
/// ball cannot yield enough screened targets are skipped whole).
pub fn sample_campaigns(
    graph: &CsrGraph,
    config: &PairSamplerConfig,
    targets_per_campaign: usize,
) -> Vec<SampledCampaign> {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = graph.node_count();
    let mut campaigns = Vec::with_capacity(config.pairs);
    let mut attempts = 0usize;
    let mut seen_sources = std::collections::HashSet::new();
    while campaigns.len() < config.pairs
        && attempts < config.max_attempts
        && targets_per_campaign > 0
    {
        attempts += 1;
        let s = NodeId::new(rng.gen_range(0..n));
        if graph.degree(s) == 0 || !seen_sources.insert(s) {
            continue;
        }
        let mut candidates = ball_candidates(graph, s, config.max_distance);
        if candidates.len() < targets_per_campaign {
            continue;
        }
        // Screen the ball in a random (but seed-deterministic) order so
        // distinct campaigns don't all pick the lowest-id targets.
        candidates.shuffle(&mut rng);
        let mut picked: Vec<(u32, f64)> = Vec::with_capacity(targets_per_campaign);
        for t in candidates {
            if picked.len() == targets_per_campaign {
                break;
            }
            let Ok(instance) = FriendingInstance::new(graph, s, t) else {
                continue;
            };
            let est = estimate_pmax_fixed(&instance, config.screen_samples, &mut rng);
            if est.pmax >= config.pmax_threshold {
                picked.push((t.as_u32(), est.pmax));
            }
        }
        if picked.len() < targets_per_campaign {
            continue;
        }
        // Canonical campaign order: ascending target id.
        picked.sort_by_key(|&(t, _)| t);
        campaigns.push(SampledCampaign {
            s: s.as_u32(),
            targets: picked.iter().map(|&(t, _)| t).collect(),
            pmax_estimates: picked.iter().map(|&(_, p)| p).collect(),
        });
    }
    campaigns
}

/// Samples pairs per the paper's protocol. Returns fewer than requested
/// when the attempt budget is exhausted (e.g. on very sparse graphs).
pub fn sample_pairs(graph: &CsrGraph, config: &PairSamplerConfig) -> Vec<SampledPair> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = graph.node_count();
    let mut pairs = Vec::with_capacity(config.pairs);
    let mut attempts = 0usize;
    let mut seen = std::collections::HashSet::new();
    while pairs.len() < config.pairs && attempts < config.max_attempts {
        attempts += 1;
        let s = NodeId::new(rng.gen_range(0..n));
        if graph.degree(s) == 0 {
            continue;
        }
        // Random BFS-ball target at hop distance in [2, max_distance].
        let Some(t) = random_node_within(graph, s, config.max_distance, &mut rng) else {
            continue;
        };
        if seen.contains(&(s, t)) {
            continue;
        }
        let Ok(instance) = FriendingInstance::new(graph, s, t) else {
            continue;
        };
        let est = estimate_pmax_fixed(&instance, config.screen_samples, &mut rng);
        if est.pmax >= config.pmax_threshold {
            seen.insert((s, t));
            pairs.push(SampledPair { s: s.as_u32(), t: t.as_u32(), pmax_estimate: est.pmax });
        }
    }
    pairs
}

/// Picks a uniform node among those at BFS distance `2..=max_distance`
/// from `s` (non-neighbors with a connection), or `None` when the ball is
/// empty.
fn random_node_within<R: Rng>(
    graph: &CsrGraph,
    s: NodeId,
    max_distance: u32,
    rng: &mut R,
) -> Option<NodeId> {
    let candidates = ball_candidates(graph, s, max_distance);
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// Every node at BFS distance `2..=max_distance` from `s`, in BFS
/// discovery order.
fn ball_candidates(graph: &CsrGraph, s: NodeId, max_distance: u32) -> Vec<NodeId> {
    use std::collections::VecDeque;
    let n = graph.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[s.index()] = 0;
    queue.push_back(s);
    let mut candidates = Vec::new();
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d >= max_distance {
            continue;
        }
        for &u in graph.neighbors(v) {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = d + 1;
                if d + 1 >= 2 {
                    candidates.push(u);
                }
                queue.push_back(u);
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use raf_graph::{GraphBuilder, WeightScheme};

    fn grid_csr() -> CsrGraph {
        raf_graph::generators::grid_graph(6, 6)
            .unwrap()
            .build(WeightScheme::UniformByDegree)
            .unwrap()
            .to_csr()
    }

    #[test]
    fn produces_requested_pairs_on_friendly_graph() {
        let g = grid_csr();
        let cfg = PairSamplerConfig {
            pairs: 10,
            screen_samples: 500,
            max_attempts: 100_000,
            seed: 3,
            ..Default::default()
        };
        let pairs = sample_pairs(&g, &cfg);
        assert_eq!(pairs.len(), 10);
        for p in &pairs {
            assert!(p.pmax_estimate >= cfg.pmax_threshold);
            assert_ne!(p.s, p.t);
            assert!(!g.has_edge(NodeId::new(p.s as usize), NodeId::new(p.t as usize)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid_csr();
        let cfg =
            PairSamplerConfig { pairs: 5, screen_samples: 300, seed: 9, ..Default::default() };
        let a = sample_pairs(&g, &cfg);
        let b = sample_pairs(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_graph_exhausts_gracefully() {
        // Two disconnected edges: no pair at distance ≥ 2 exists.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build(WeightScheme::UniformByDegree).unwrap().to_csr();
        let cfg = PairSamplerConfig { pairs: 5, max_attempts: 2_000, ..Default::default() };
        let pairs = sample_pairs(&g, &cfg);
        assert!(pairs.is_empty());
    }

    #[test]
    fn campaigns_are_screened_canonical_and_deterministic() {
        let g = grid_csr();
        let cfg = PairSamplerConfig {
            pairs: 4,
            screen_samples: 400,
            max_attempts: 100_000,
            seed: 11,
            ..Default::default()
        };
        let campaigns = sample_campaigns(&g, &cfg, 3);
        assert_eq!(campaigns.len(), 4, "grid ball has plenty of screened targets");
        for c in &campaigns {
            assert_eq!(c.targets.len(), 3);
            assert_eq!(c.pmax_estimates.len(), 3);
            // Canonical ascending order doubles as a distinctness check.
            assert!(c.targets.windows(2).all(|w| w[0] < w[1]));
            for (&t, &pmax) in c.targets.iter().zip(&c.pmax_estimates) {
                assert_ne!(t, c.s);
                assert!(pmax >= cfg.pmax_threshold);
                assert!(!g.has_edge(NodeId::new(c.s as usize), NodeId::new(t as usize)));
            }
        }
        // Sources are distinct across campaigns, and the whole batch is a
        // pure function of the seed.
        let sources: std::collections::HashSet<u32> = campaigns.iter().map(|c| c.s).collect();
        assert_eq!(sources.len(), campaigns.len());
        assert_eq!(campaigns, sample_campaigns(&g, &cfg, 3));
    }

    #[test]
    fn oversized_campaigns_exhaust_gracefully() {
        let g = grid_csr();
        let cfg = PairSamplerConfig { pairs: 2, max_attempts: 2_000, ..Default::default() };
        // No 6×6 grid ball holds 1000 screened targets; zero-target
        // campaigns are meaningless and must not loop.
        assert!(sample_campaigns(&g, &cfg, 1_000).is_empty());
        assert!(sample_campaigns(&g, &cfg, 0).is_empty());
    }

    #[test]
    fn no_duplicate_pairs() {
        let g = grid_csr();
        let cfg = PairSamplerConfig {
            pairs: 15,
            screen_samples: 300,
            max_attempts: 200_000,
            seed: 4,
            ..Default::default()
        };
        let pairs = sample_pairs(&g, &cfg);
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(seen.insert((p.s, p.t)));
        }
    }
}
