//! The evaluation's data layer.
//!
//! The paper evaluates on four SNAP datasets (Table I): Wiki (7K nodes /
//! 103K edges), HepTh (28K / 353K), HepPh (35K / 421K), and Youtube
//! (1.1M / 6.0M). This environment has no network access, so the crate
//! provides **synthetic stand-ins** calibrated to Table I's node/edge
//! counts (DESIGN.md §4 documents why the substitution preserves the
//! evaluation's shape), plus a loader that transparently prefers real
//! SNAP edge lists dropped into `data/`.
//!
//! * [`Dataset`] — the four-dataset registry with Table I statistics;
//! * [`synthetic`] — calibrated generators (powerlaw-cluster for the
//!   dense Wiki graph, preferential attachment for the citation networks
//!   and Youtube, with fractional attachment to hit non-integer average
//!   degrees);
//! * [`loader`] — real-data override (`data/<name>.txt`, SNAP format);
//! * [`pairs`] — the `(s, t)` pair sampler with the paper's
//!   `p_max ≥ 0.01` screening.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loader;
pub mod pairs;
pub mod synthetic;

mod registry;

pub use loader::{
    load_dataset, load_dataset_csr, DatasetSource, LoadedDataset, PreparedCsr, RelabelMode,
};
pub use pairs::{sample_campaigns, sample_pairs, PairSamplerConfig, SampledCampaign, SampledPair};
pub use registry::{Dataset, DatasetSpec};

/// Convenience prelude re-exporting the most common types.
pub mod prelude {
    pub use crate::{load_dataset, sample_pairs, Dataset, DatasetSpec, PairSamplerConfig};
}
