//! The four-dataset registry mirroring the paper's Table I.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The datasets of the paper's evaluation (Table I).
///
/// ```
/// use raf_datasets::Dataset;
///
/// let spec = Dataset::Wiki.spec();
/// assert_eq!(spec.nodes, 7_000);
/// assert_eq!(Dataset::all().len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Wiki: who-votes-on-whom network from Wikipedia (7K / 103K).
    Wiki,
    /// HepTh: Arxiv High Energy Physics Theory citations (28K / 353K).
    HepTh,
    /// HepPh: Arxiv High Energy Physics Phenomenology citations
    /// (35K / 421K).
    HepPh,
    /// Youtube: the Youtube social network (1.1M / 6.0M).
    Youtube,
}

impl Dataset {
    /// All four datasets in the paper's Table I order.
    pub fn all() -> [Dataset; 4] {
        [Dataset::Wiki, Dataset::HepTh, Dataset::HepPh, Dataset::Youtube]
    }

    /// The Table I specification of this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Wiki => DatasetSpec {
                name: "Wiki",
                file_stem: "wiki",
                nodes: 7_000,
                edges: 103_000,
                avg_degree: 14.7,
            },
            Dataset::HepTh => DatasetSpec {
                name: "HepTh",
                file_stem: "hepth",
                nodes: 28_000,
                edges: 353_000,
                avg_degree: 12.6,
            },
            Dataset::HepPh => DatasetSpec {
                name: "HepPh",
                file_stem: "hepph",
                nodes: 35_000,
                edges: 421_000,
                avg_degree: 12.0,
            },
            Dataset::Youtube => DatasetSpec {
                name: "Youtube",
                file_stem: "youtube",
                nodes: 1_100_000,
                edges: 6_000_000,
                avg_degree: 5.54,
            },
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec().name)
    }
}

/// Table I row: the published statistics of a dataset.
///
/// `avg_degree` follows the paper's convention of `m/n` (the source
/// networks are directed; the friending model treats edges as undirected
/// friendships, so `2m/n` would differ — Table I prints `m/n`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Display name.
    pub name: &'static str,
    /// Stem for real-data files (`data/<stem>.txt`).
    pub file_stem: &'static str,
    /// Node count from Table I.
    pub nodes: usize,
    /// Edge count from Table I.
    pub edges: usize,
    /// Average degree (`m/n`) from Table I.
    pub avg_degree: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_datasets_in_order() {
        let names: Vec<&str> = Dataset::all().iter().map(|d| d.spec().name).collect();
        assert_eq!(names, vec!["Wiki", "HepTh", "HepPh", "Youtube"]);
    }

    #[test]
    fn table1_statistics() {
        let wiki = Dataset::Wiki.spec();
        assert_eq!(wiki.nodes, 7_000);
        assert_eq!(wiki.edges, 103_000);
        let yt = Dataset::Youtube.spec();
        assert_eq!(yt.nodes, 1_100_000);
        assert!((yt.avg_degree - 5.54).abs() < 1e-12);
    }

    #[test]
    fn avg_degree_is_m_over_n_convention() {
        for d in Dataset::all() {
            let spec = d.spec();
            let m_over_n = spec.edges as f64 / spec.nodes as f64;
            assert!(
                (m_over_n - spec.avg_degree).abs() / spec.avg_degree < 0.05,
                "{}: {} vs {}",
                spec.name,
                m_over_n,
                spec.avg_degree
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataset::Wiki.to_string(), "Wiki");
        assert_eq!(Dataset::HepPh.to_string(), "HepPh");
    }
}
