//! Sequence-related extensions, mirroring `rand::seq`.

use crate::Rng;

/// Extension trait adding random operations to slices.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen reference, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        let v: Vec<u32> = vec![];
        assert_eq!(v.choose(&mut rng), None);
    }
}
