//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the narrow slice of the `rand` 0.8 API it actually
//! uses instead of depending on crates.io:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, and `gen_bool`;
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`;
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded through
//!   SplitMix64 (deterministic across platforms and runs);
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! The streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), but every consumer in this workspace only relies on
//! *determinism for a fixed seed*, never on matching upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

mod splitmix;
mod xoshiro;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (upper bits of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full range for integers and `bool`).
///
/// This plays the role of `rand::distributions::Standard`.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift; the modulo bias at 64 bits is negligible for
    // the spans this workspace draws (all far below 2^32).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (`[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from `range`; panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (same expansion scheme as upstream `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut mix = splitmix::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = mix.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub use rngs::StdRng;
