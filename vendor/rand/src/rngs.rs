//! Named generators, mirroring `rand::rngs`.

use crate::xoshiro::Xoshiro256PlusPlus;
use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Upstream `rand` backs `StdRng` with ChaCha12; this vendored stand-in
/// uses xoshiro256++, which is more than adequate for simulation and has
/// a trivially portable implementation. Streams are deterministic per
/// seed but do **not** match upstream `rand`.
#[derive(Clone, Debug)]
pub struct StdRng {
    inner: Xoshiro256PlusPlus,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        StdRng { inner: Xoshiro256PlusPlus::from_state(s) }
    }
}

/// Alias of [`StdRng`]; upstream's `SmallRng` is also a small xoshiro
/// variant, so the distinction collapses in this vendored build.
pub type SmallRng = StdRng;
