//! xoshiro256++ (Blackman & Vigna, 2019) — the engine behind this
//! vendored [`StdRng`](crate::rngs::StdRng).

/// The 256-bit xoshiro256++ state.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds the generator from four state words; at least one must be
    /// non-zero (an all-zero state is escaped to a fixed constant).
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Xoshiro256PlusPlus { s }
    }

    /// Returns the next value of the sequence.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
