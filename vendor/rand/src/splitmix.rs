//! SplitMix64 — the seed-expansion generator (Vigna, 2015).

/// A SplitMix64 state; used to expand `u64` seeds into full seed arrays.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from its 64-bit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Returns the next value of the sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
