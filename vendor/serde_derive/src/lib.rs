//! Offline stand-in for `serde_derive`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` attributes so they are ready for real serde once the
//! build environment can fetch crates.io dependencies. Until then these
//! derives only need to *compile*; nothing in the workspace exercises the
//! serde data model (the vendored `serde` crate provides blanket trait
//! impls, so bounds like `T: Serialize` still hold). Each macro therefore
//! validates nothing and expands to an empty token stream.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
