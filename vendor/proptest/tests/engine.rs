//! Self-tests for the vendored mini-proptest engine: the macros must
//! actually loop, sample varied values, and be deterministic.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use std::cell::Cell;

thread_local! {
    static CASES_SEEN: Cell<u32> = const { Cell::new(0) };
    static DISTINCT_ACC: Cell<u64> = const { Cell::new(0) };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn runs_every_case(x in 0u64..1_000_000) {
        CASES_SEEN.with(|c| c.set(c.get() + 1));
        DISTINCT_ACC.with(|a| a.set(a.get() ^ x.wrapping_mul(0x9e37_79b9)));
        prop_assert!(x < 1_000_000);
    }
}

#[test]
fn case_loop_and_variety() {
    runs_every_case();
    assert_eq!(CASES_SEEN.with(|c| c.get()), 50, "property must run once per case");
    assert_ne!(DISTINCT_ACC.with(|a| a.get()), 0, "sampled values must vary across cases");
}

prop_compose! {
    /// Dependent two-stage composition: a length, then that many values.
    fn sized_vecs()(len in 1usize..8)
        (values in proptest::collection::vec(0u32..100, 1..9), len in Just(len))
        -> (usize, Vec<u32>) {
        (len, values)
    }
}

#[test]
fn compose_and_collections_sample() {
    let strat = sized_vecs();
    let mut rng = TestRng::deterministic("compose_and_collections_sample");
    for _ in 0..100 {
        let (len, values) = strat.sample(&mut rng);
        assert!((1..8).contains(&len));
        assert!(!values.is_empty() && values.len() < 9);
        assert!(values.iter().all(|&v| v < 100));
    }
}

#[test]
fn same_test_name_means_same_stream() {
    let mut a = TestRng::deterministic("stream-check");
    let mut b = TestRng::deterministic("stream-check");
    let strat = 0u64..u64::MAX;
    for _ in 0..64 {
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}

#[test]
fn different_test_names_mean_different_streams() {
    let mut a = TestRng::deterministic("stream-a");
    let mut b = TestRng::deterministic("stream-b");
    let strat = 0u64..u64::MAX;
    let same = (0..64).filter(|_| strat.sample(&mut a) == strat.sample(&mut b)).count();
    assert!(same < 4, "independent streams should almost never collide");
}

proptest! {
    #[test]
    fn early_ok_return_bails_case(x in 0u32..10) {
        if x < 10 {
            return Ok(());
        }
        prop_assert!(false, "unreachable: every case bails above");
    }
}
