//! Test configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-property configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream proptest's 256 to keep
    /// `cargo test` fast; expensive properties in this workspace override
    /// it downwards explicitly, and `PROPTEST_CASES` overrides it from
    /// the environment.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Error type carried by a property body's `Result`, mirroring
/// `proptest::test_runner::TestCaseError` far enough for `return Ok(())`
/// early bails and explicit `Err(...)` rejections to compile.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG handed to strategies.
///
/// Seeded deterministically from the fully qualified test name, so every
/// `cargo test` run generates identical inputs. Set `PROPTEST_SEED` to a
/// `u64` to explore a different deterministic stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn deterministic(test_name: &str) -> Self {
        let env_seed: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
        TestRng { inner: StdRng::seed_from_u64(fnv1a(test_name) ^ env_seed) }
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
