//! One-stop prelude, mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};

/// Alias of the `proptest` crate itself, matching real proptest's
/// `prelude::prop` re-export.
pub use crate as prop;
