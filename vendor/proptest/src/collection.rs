//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// The size specification accepted by [`vec`]; a half-open range of
/// lengths (a fixed `usize` also converts).
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { start: n, end: n + 1 }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is uniform in `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Creates a strategy generating vectors of values from `element`, with
/// lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
