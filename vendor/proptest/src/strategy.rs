//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// References to strategies are strategies.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy backed by a sampling closure; the building block
/// [`prop_compose!`](crate::prop_compose) expands to.
pub struct SampleWith<T, F: Fn(&mut TestRng) -> T> {
    func: F,
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for SampleWith<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.func)(rng)
    }
}

/// Wraps a sampling closure into a [`Strategy`].
pub fn sample_with<T, F: Fn(&mut TestRng) -> T>(func: F) -> SampleWith<T, F> {
    SampleWith { func }
}
