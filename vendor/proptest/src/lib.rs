//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this crate implements
//! the subset of proptest's surface syntax the workspace's property tests
//! use — [`proptest!`], [`prop_compose!`], the `prop_assert*` macros,
//! range / tuple / [`Just`](strategy::Just) / [`collection::vec`]
//! strategies, and [`ProptestConfig`](test_runner::ProptestConfig) — on
//! top of a deliberately simple engine:
//!
//! * **Deterministic**: every test derives its RNG seed from the test
//!   function's name (FNV-1a), optionally XOR-ed with `PROPTEST_SEED`
//!   from the environment. `cargo test` is reproducible run to run, on
//!   every platform.
//! * **No shrinking**: a failing case panics with the generated inputs
//!   visible in the assertion message rather than minimizing them. For
//!   the instance sizes used in this workspace (tens of nodes) raw
//!   counterexamples are already readable.
//! * **No persistence**: there is no `proptest-regressions` directory;
//!   determinism makes it unnecessary.
//!
//! The macros expand to plain `#[test]` functions, so `cargo test -q`
//! treats each property as one test that internally loops over
//! `config.cases` sampled inputs (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Supported forms (mirroring real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///
///     /// docs and attributes are preserved
///     #[test]
///     fn property(x in 0usize..10, (a, b) in some_strategy()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; expands each property to a
/// `#[test]` function looping over sampled inputs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    // Mirror real proptest: the body runs in a closure
                    // returning Result, so `return Ok(())` rejects a case
                    // early (e.g. a degenerate random instance).
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = __outcome {
                        panic!("property {} failed: {}", stringify!($name), err);
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy as a function, mirroring proptest's
/// `prop_compose!`.
///
/// Both the one-stage and the two-stage (dependent) forms are supported:
///
/// ```ignore
/// prop_compose! {
///     fn edge_lists()(max_node in 2usize..40)
///         (edges in proptest::collection::vec((0..max_node, 0..max_node), 0..120),
///          max_node in Just(max_node))
///         -> (usize, Vec<(usize, usize)>) {
///         (max_node, edges)
///     }
/// }
/// ```
///
/// In the two-stage form the second group's strategy expressions may
/// reference the values bound by the first group.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($argname:ident: $argty:ty),* $(,)?)
        ($($p1:pat in $s1:expr),* $(,)?)
        ($($p2:pat in $s2:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argname: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::sample_with(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $p1 = $crate::strategy::Strategy::sample(&($s1), __rng);)*
                $(let $p2 = $crate::strategy::Strategy::sample(&($s2), __rng);)*
                $body
            })
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($argname:ident: $argty:ty),* $(,)?)
        ($($p1:pat in $s1:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argname: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::sample_with(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $p1 = $crate::strategy::Strategy::sample(&($s1), __rng);)*
                $body
            })
        }
    };
}

/// Asserts a condition inside a property; equivalent to `assert!` in this
/// shrink-free implementation.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property; equivalent to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property; equivalent to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
