//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this crate keeps the
//! workspace's `benches/` targets compiling and runnable. It mirrors the
//! API surface those benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — but the
//! measurement model is minimal: each benchmark runs `sample_size`
//! iterations (default 10, after one warm-up) and prints the mean
//! wall-clock time per iteration. There are no statistics, baselines, or
//! HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` once as warm-up and then `samples` measured times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples as u64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher =
            Bencher { samples: self.sample_size, elapsed: Duration::ZERO, iterations: 0 };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &bencher);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: 10, elapsed: Duration::ZERO, iterations: 0 };
        f(&mut bencher);
        report(&id.id, &bencher);
        self
    }
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.iterations == 0 {
        println!("{name:<60} (no measurements)");
        return;
    }
    let per_iter = bencher.elapsed / bencher.iterations as u32;
    println!("{name:<60} {per_iter:>12.2?}/iter ({} iters)", bencher.iterations);
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
