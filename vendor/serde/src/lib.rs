//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no network access, so this crate keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compiling
//! without pulling real serde:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket
//!   impls, so any `T: Serialize` bound is satisfied;
//! * the derive macros (re-exported from the vendored `serde_derive`)
//!   accept the full attribute syntax, including `#[serde(...)]` helper
//!   attributes, and expand to nothing.
//!
//! No serialization is ever performed. Swapping in real serde later is a
//! one-line Cargo change; the annotations in the workspace are already
//! upstream-compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types, since nothing in this workspace serializes through serde.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket alias for types deserializable without borrowing.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
