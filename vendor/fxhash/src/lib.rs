//! Offline stand-in for the `fxhash` crate (the build environment has no
//! network access; see the workspace manifest's vendored-deps note).
//!
//! Implements the FxHash function used by Firefox and rustc: fold each
//! input word into the state with `rotate-left(5) ⊕ word`, then multiply
//! by a large odd constant. It is **not** collision-resistant against
//! adversarial input — do not use it for untrusted keys — but it is
//! extremely fast on short integer keys, which is exactly the
//! path-interning workload `raf-model` uses it for.
//!
//! Surface: [`FxHasher`] (a [`std::hash::Hasher`]), the [`FxHashMap`] /
//! [`FxHashSet`] aliases, and the slice helpers [`hash_u32s`] /
//! [`hash64`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit FxHash multiplier (derived from the golden ratio, as in
/// rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A [`Hasher`] implementing the FxHash multiply-rotate scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Folds one 64-bit word into the state.
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes a `u32` slice, folding one word per element (plus the length,
/// so a slice is never a hash-prefix of its extension).
#[inline]
pub fn hash_u32s(words: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.write_u32(w);
    }
    h.write_usize(words.len());
    h.finish()
}

/// Hashes anything `Hash` with one throwaway [`FxHasher`].
#[inline]
pub fn hash64<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u32s(&[1, 2, 3]), hash_u32s(&[1, 2, 3]));
        assert_eq!(hash64("abc"), hash64("abc"));
    }

    #[test]
    fn discriminates_order_and_length() {
        assert_ne!(hash_u32s(&[1, 2, 3]), hash_u32s(&[3, 2, 1]));
        assert_ne!(hash_u32s(&[1, 2]), hash_u32s(&[1, 2, 0]));
        assert_ne!(hash_u32s(&[]), hash_u32s(&[0]));
    }

    #[test]
    fn empty_input_is_stable() {
        assert_eq!(hash_u32s(&[]), hash_u32s(&[]));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Consecutive keys must not land in consecutive buckets of a
        // power-of-two table (the interner relies on this).
        let mask = 1023u64;
        let buckets: std::collections::HashSet<u64> =
            (0..256u32).map(|i| hash_u32s(&[i]) & mask).collect();
        assert!(buckets.len() > 200, "only {} distinct buckets", buckets.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(7, 49);
        assert_eq!(m.get(&7), Some(&49));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x") && !s.insert("x"));
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(a.finish(), c.finish());
    }
}
