//! Baseline comparison on a dataset stand-in: the Fig. 3 protocol at
//! example scale — RAF vs High-Degree vs Shortest-Path vs Random at equal
//! invitation budget, over several screened (s, t) pairs.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use active_friending::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3% Wiki stand-in (≈ 210 users at Table I density).
    let loaded = load_dataset(Dataset::Wiki, 0.03, 11, std::path::Path::new("data"))?;
    let csr = loaded.graph.to_csr();
    println!(
        "dataset: {} ({:?}) with {} nodes / {} edges",
        loaded.dataset,
        loaded.source,
        csr.node_count(),
        csr.edge_count()
    );

    // Screened pairs, as in the paper's problem setting.
    let pair_cfg =
        PairSamplerConfig { pairs: 5, screen_samples: 2_000, seed: 3, ..Default::default() };
    let pairs = sample_pairs(&csr, &pair_cfg);
    println!("sampled {} pairs with p_max ≥ {}", pairs.len(), pair_cfg.pmax_threshold);

    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let samples = 20_000;
    println!(
        "{:>6} {:>6} {:>8} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "s", "t", "pmax", "|I|", "RAF", "HD", "SP", "Random"
    );
    for pair in &pairs {
        let s = NodeId::new(pair.s as usize);
        let t = NodeId::new(pair.t as usize);
        let instance = FriendingInstance::new(&csr, s, t)?;
        let config =
            RafConfig::with_alpha(0.3).seed(pair.s as u64).budget(RealizationBudget::Fixed(30_000));
        let result = match RafAlgorithm::new(config).run(&instance) {
            Ok(r) => r,
            Err(CoreError::TargetUnreachable { .. }) => continue,
            Err(e) => return Err(e.into()),
        };
        let size = result.invitation_size();
        let hd = HighDegree::new().build(&instance, size);
        let sp = ShortestPath::new().build(&instance, size);
        let random = RandomInvite::with_seed(pair.t as u64).build(&instance, size);
        let f_raf = evaluate(&instance, &result.invitations, samples, &mut rng).probability;
        let f_hd = evaluate(&instance, &hd, samples, &mut rng).probability;
        let f_sp = evaluate(&instance, &sp, samples, &mut rng).probability;
        let f_rand = evaluate(&instance, &random, samples, &mut rng).probability;
        println!(
            "{:>6} {:>6} {:>8.4} {:>6} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            pair.s, pair.t, pair.pmax_estimate, size, f_raf, f_hd, f_sp, f_rand
        );
    }
    println!("\n(RAF should dominate; HD collapses without a connecting path —");
    println!(" the Fig. 3 shape at example scale.)");
    Ok(())
}
