//! Budgeted friending: the *maximum* active friending variant — "I am
//! willing to send at most k invitations; make the friendship as likely
//! as possible" (the problem of Yang et al. [7] / Yuan et al. [6], solved
//! here with the realization machinery built for RAF).
//!
//! ```sh
//! cargo run --release --example budget_friending
//! ```

use active_friending::prelude::*;
use raf_core::{MaxFriending, MaxFriendingConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let loaded = load_dataset(Dataset::HepPh, 0.01, 3, std::path::Path::new("data"))?;
    let csr = loaded.graph.to_csr();
    println!("graph: {} nodes / {} edges", csr.node_count(), csr.edge_count());

    let pair_cfg =
        PairSamplerConfig { pairs: 1, screen_samples: 3_000, seed: 8, ..Default::default() };
    let pairs = sample_pairs(&csr, &pair_cfg);
    let Some(pair) = pairs.first() else {
        println!("no screened pair found; rerun with another seed");
        return Ok(());
    };
    let instance =
        FriendingInstance::new(&csr, NodeId::new(pair.s as usize), NodeId::new(pair.t as usize))?;
    println!("pair s={} t={}, p_max ≈ {:.4}\n", pair.s, pair.t, pair.pmax_estimate);

    // Sweep the invitation budget and watch f(I) climb toward p_max.
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    println!("{:>8} {:>10} {:>12} {:>12}", "budget", "|I| used", "f(I)", "f(I)/pmax");
    for budget in [1usize, 2, 4, 8, 16, 32, 64] {
        let cfg = MaxFriendingConfig { budget, realizations: 40_000, seed: 4, threads: 1 };
        let result = MaxFriending::new(cfg).run(&instance);
        // Cross-check the in-pool estimate with an independent sample.
        let f_indep = evaluate(&instance, &result.invitations, 30_000, &mut rng).probability;
        println!(
            "{:>8} {:>10} {:>12.4} {:>12.3}",
            budget,
            result.invitations.len(),
            f_indep,
            f_indep / pair.pmax_estimate
        );
    }
    println!("\n(Diminishing returns as the budget exhausts the useful routes —");
    println!(" the supermodular jumps happen when a whole new route fits.)");
    Ok(())
}
