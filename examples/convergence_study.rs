//! Convergence study: how many realizations does RAF actually need?
//!
//! Reproduces the Sec. IV-E / Fig. 6 investigation at example scale: fix
//! β, sweep the realization budget `l`, and watch the achieved acceptance
//! probability saturate far below the theoretical `l*` of eq. (16).
//!
//! ```sh
//! cargo run --release --example convergence_study
//! ```

use active_friending::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let loaded = load_dataset(Dataset::HepTh, 0.01, 5, std::path::Path::new("data"))?;
    let csr = loaded.graph.to_csr();
    println!("graph: {} nodes / {} edges", csr.node_count(), csr.edge_count());

    // One screened pair.
    let pair_cfg =
        PairSamplerConfig { pairs: 1, screen_samples: 3_000, seed: 1, ..Default::default() };
    let pairs = sample_pairs(&csr, &pair_cfg);
    let Some(pair) = pairs.first() else {
        println!("no screened pair found; rerun with another seed");
        return Ok(());
    };
    let instance =
        FriendingInstance::new(&csr, NodeId::new(pair.s as usize), NodeId::new(pair.t as usize))?;
    println!("pair s={} t={} with p_max ≈ {:.4}", pair.s, pair.t, pair.pmax_estimate);

    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    println!("{:>12} {:>8} {:>10} {:>12}", "realizations", "|I|", "f(I)", "f(I)/pmax");
    for l in [500u64, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000] {
        let config = RafConfig::with_alpha(0.3).seed(31).budget(RealizationBudget::Fixed(l));
        match RafAlgorithm::new(config).run(&instance) {
            Ok(result) => {
                let f = evaluate(&instance, &result.invitations, 30_000, &mut rng).probability;
                println!(
                    "{:>12} {:>8} {:>10.4} {:>12.3}",
                    l,
                    result.invitation_size(),
                    f,
                    f / pair.pmax_estimate
                );
            }
            Err(CoreError::TargetUnreachable { .. }) => {
                println!("{l:>12} {:>8} {:>10} {:>12}", "-", "-", "no type-1 realization");
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!("\n(The curve saturates quickly — the paper's Fig. 6 observation that");
    println!(" far fewer realizations than the l* bound suffice in practice.)");
    Ok(())
}
