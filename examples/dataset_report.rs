//! Dataset report: print Table I-style statistics for the four dataset
//! stand-ins (or real SNAP files dropped into `data/`), including the
//! calibration error of the synthetic generators.
//!
//! ```sh
//! cargo run --release --example dataset_report          # 2% scale
//! AF_SCALE=0.1 cargo run --release --example dataset_report
//! ```

use active_friending::prelude::*;
use raf_datasets::synthetic::calibration_error;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::var("AF_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02);
    println!("scale = {scale} (of Table I sizes)\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "dataset", "nodes", "edges", "m/n", "paper m/n", "Δnodes", "Δedges"
    );
    for dataset in Dataset::all() {
        let loaded = load_dataset(dataset, scale, 1, std::path::Path::new("data"))?;
        let spec = dataset.spec();
        let g = &loaded.graph;
        let (dn, dm) = calibration_error(&spec, g, scale);
        println!(
            "{:>8} {:>10} {:>10} {:>10.2} {:>10.2} {:>7.1}% {:>7.1}%",
            spec.name,
            g.node_count(),
            g.edge_count(),
            g.edge_count() as f64 / g.node_count() as f64,
            spec.avg_degree,
            dn * 100.0,
            dm * 100.0,
        );
    }
    println!("\n(m/n matches Table I's 'Avg. Degree' convention; Δ columns show");
    println!(" the stand-ins' calibration error at this scale.)");
    Ok(())
}
