//! Celebrity friending: the paper's motivating scenario — an ordinary
//! user tries to friend a high-degree "celebrity" on a scale-free
//! network, where direct invitations are hopeless and mutual friends must
//! be accumulated along the way.
//!
//! ```sh
//! cargo run --release --example celebrity_friending
//! ```

use active_friending::prelude::*;
use raf_graph::generators::barabasi_albert;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 000-user scale-free network (preferential attachment).
    let mut gen_rng = rand::rngs::StdRng::seed_from_u64(20);
    let graph = barabasi_albert(2_000, 3, &mut gen_rng)?.build(WeightScheme::UniformByDegree)?;
    let csr = graph.to_csr();
    let metrics = GraphMetrics::compute(&graph);
    println!("network: {metrics}");

    // The celebrity: the highest-degree user.
    let celebrity = (0..csr.node_count())
        .map(NodeId::new)
        .max_by_key(|&v| csr.degree(v))
        .expect("non-empty graph");
    println!("celebrity t = {celebrity} with degree {}", csr.degree(celebrity));

    // The fan: a random low-degree user far from the celebrity.
    let fan = (0..csr.node_count())
        .map(NodeId::new)
        .find(|&v| csr.degree(v) == 3 && !csr.has_edge(v, celebrity))
        .expect("some minimum-degree non-neighbor exists");
    println!("fan s = {fan} with degree {}", csr.degree(fan));

    let instance = FriendingInstance::new(&csr, fan, celebrity)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let pmax = estimate_pmax_fixed(&instance, 30_000, &mut rng);
    println!("p_max ≈ {:.4}", pmax.pmax);
    if pmax.pmax < 0.01 {
        println!("pair below the paper's 0.01 screen; rerun with another seed");
        return Ok(());
    }

    // How few invitations does RAF need for half the achievable odds?
    let config = RafConfig::with_alpha(0.5).seed(5).budget(RealizationBudget::Fixed(50_000));
    let result = RafAlgorithm::new(config).run(&instance)?;
    println!(
        "RAF invites {} users (V_max would need {})",
        result.invitation_size(),
        result.vmax_size.unwrap_or(0),
    );

    // Compare against HD at the same budget: hubs alone do not make a path.
    let hd = HighDegree::new().build(&instance, result.invitation_size());
    let f_raf = evaluate(&instance, &result.invitations, 30_000, &mut rng).probability;
    let f_hd = evaluate(&instance, &hd, 30_000, &mut rng).probability;
    println!("f(I_RAF) = {f_raf:.4}   f(I_HD) = {f_hd:.4}");
    println!(
        "RAF reaches {:.0}% of p_max with {} invitations",
        100.0 * f_raf / pmax.pmax,
        result.invitation_size()
    );
    Ok(())
}
