//! Quickstart: run RAF on a small hand-built social network and compare
//! it with the baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use active_friending::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a small network with three routes from s = 0 to t = 1 of
    // different lengths, plus some distractor hubs.
    let mut builder = GraphBuilder::new();
    builder.add_edges(vec![
        // route A: 2 hops of interior
        (0, 2),
        (2, 3),
        (3, 1),
        // route B: 2 hops of interior
        (0, 4),
        (4, 5),
        (5, 1),
        // route C: 3 hops of interior
        (0, 6),
        (6, 7),
        (7, 8),
        (8, 1),
        // distractor hub: high degree, useless for friending t
        (9, 10),
        (9, 11),
        (9, 12),
        (9, 13),
        (9, 0),
    ])?;
    let graph = builder.build(WeightScheme::UniformByDegree)?.to_csr();
    let s = NodeId::new(0);
    let t = NodeId::new(1);
    let instance = FriendingInstance::new(&graph, s, t)?;

    println!("graph: {} nodes, {} edges", graph.node_count(), graph.edge_count());
    println!("initiator s = {s}, target t = {t}, seeds N_s = {:?}", instance.seeds());

    // The best any strategy can do: p_max, estimated by Monte Carlo.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let pmax = estimate_pmax_fixed(&instance, 50_000, &mut rng);
    println!("p_max ≈ {:.4} (from {} sampled realizations)", pmax.pmax, pmax.samples);

    // RAF with α = 0.8: reach 80% of p_max with as few invitations as
    // possible.
    let config = RafConfig::with_alpha(0.8).seed(42).budget(RealizationBudget::Fixed(30_000));
    let result = RafAlgorithm::new(config).run(&instance)?;
    let raf_inv = result.invitations.clone();
    println!(
        "RAF: |I| = {} invitations {:?} (β = {:.3}, pool |B¹| = {})",
        result.invitation_size(),
        raf_inv.to_vec(),
        result.parameters.beta,
        result.type1_count,
    );

    // Evaluate all strategies at the same invitation budget.
    let size = result.invitation_size();
    let hd_inv = HighDegree::new().build(&instance, size);
    let sp_inv = ShortestPath::new().build(&instance, size);
    let samples = 50_000;
    let f_raf = evaluate(&instance, &raf_inv, samples, &mut rng).probability;
    let f_hd = evaluate(&instance, &hd_inv, samples, &mut rng).probability;
    let f_sp = evaluate(&instance, &sp_inv, samples, &mut rng).probability;
    println!("acceptance probability at |I| = {size}:");
    println!("  RAF            f = {f_raf:.4}");
    println!("  HighDegree     f = {f_hd:.4}");
    println!("  ShortestPath   f = {f_sp:.4}");

    // Lemma 7: V_max is the minimum set achieving p_max itself.
    let vmax = vmax_exact(&instance);
    let f_vmax = evaluate(&instance, &vmax, samples, &mut rng).probability;
    println!("V_max: |V_max| = {} with f = {f_vmax:.4} ≈ p_max", vmax.len());

    assert!(f_raf >= f_hd - 0.02, "RAF should not lose to HD");
    Ok(())
}
